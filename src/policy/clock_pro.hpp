/**
 * @file
 * CLOCK-Pro (Jiang, Chen, Zhang — USENIX ATC'05) at page granularity.
 *
 * All tracked pages — resident hot, resident cold, and non-resident cold
 * pages in their test period — live on one clock list in insertion order.
 * Three hands sweep it:
 *
 *  - HAND_cold finds the eviction victim among resident cold pages;
 *  - HAND_test terminates test periods and prunes non-resident metadata;
 *  - HAND_hot demotes unreferenced hot pages to cold.
 *
 * A cold page re-referenced during its test period is promoted to hot on
 * its next fault (the LIRS reuse-distance principle).  The paper fixes the
 * cold-page allocation m_c at 128 (§V-B), so the adaptive m_c feedback of
 * the original algorithm is disabled here; everything else follows the
 * original.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/intrusive_list.hpp"
#include "common/types.hpp"
#include "policy/eviction_policy.hpp"

namespace hpe {

/** Tuning knobs for ClockProPolicy. */
struct ClockProConfig
{
    /** Target number of resident cold pages (paper: fixed 128). */
    std::size_t coldAllocation = 128;
    /** Upper bound on non-resident cold (test) metadata entries. */
    std::size_t maxNonResident = 1u << 16;
};

/** CLOCK-Pro with the fixed cold allocation used in the HPE paper. */
class ClockProPolicy : public EvictionPolicy
{
  public:
    explicit ClockProPolicy(const ClockProConfig &cfg = {});
    ~ClockProPolicy() override;

    void onHit(PageId page) override;
    void onFault(PageId page) override;
    PageId selectVictim() override;
    void onEvict(PageId page) override;
    void onMigrateIn(PageId page) override;
    /** Speculative arrival: resident cold, *outside* any test period, so
     *  speculation can never ride the test-period shortcut to hot. */
    void onPrefetchIn(PageId page) override;
    std::string name() const override { return "CLOCK-Pro"; }

    // Hot/cold transitions are CLOCK-Pro's LIR/HIR analog; they surface as
    // Promotion/Demotion events with the ClockProPage scope.
    void setTraceSink(trace::TraceSink *sink) override { sink_ = sink; }

    // CLOCK-Pro tracks non-resident (test) pages too, up to ~2x memory.
    void reserveCapacity(std::size_t frames) override { nodes_.reserve(2 * frames); }

    std::optional<std::vector<PageId>> trackedResidentPages() const override;

    /** @{ introspection for tests */
    std::size_t residentHot() const { return numHot_; }
    std::size_t residentCold() const { return numColdRes_; }
    std::size_t nonResident() const { return numColdNonRes_; }
    /** @} */

  private:
    enum class State : std::uint8_t { Hot, ColdResident, ColdNonResident };

    struct Node : IntrusiveNode
    {
        PageId page = kInvalidId;
        State state = State::ColdResident;
        bool ref = false;   ///< referenced since last hand pass
        bool test = false;  ///< cold page inside its test period
    };

    /** Advance @p hand to the next node, wrapping at the list tail. */
    Node *clockNext(Node *hand);

    /** Remove @p node from the clock, fixing any hand parked on it. */
    void unlink(Node &node);

    /** Run HAND_hot once: demote the first unreferenced hot page it finds. */
    void runHandHot();

    /** Run HAND_test one step: end the test period of one cold page. */
    void runHandTest();

    /** Insert a brand-new cold page at the clock head (newest position). */
    Node &insertNew(PageId page);

    /** Emit a hot/cold transition event if a sink is attached. */
    void emitTransition(bool promotion, PageId page);

    ClockProConfig cfg_;
    trace::TraceSink *sink_ = nullptr;
    IntrusiveList<Node> clock_;
    std::unordered_map<PageId, std::unique_ptr<Node>> nodes_;

    Node *handCold_ = nullptr;
    Node *handHot_ = nullptr;
    Node *handTest_ = nullptr;

    std::size_t numHot_ = 0;
    std::size_t numColdRes_ = 0;
    std::size_t numColdNonRes_ = 0;
};

} // namespace hpe
