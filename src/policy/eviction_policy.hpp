/**
 * @file
 * The eviction-policy interface shared by the functional paging simulator
 * and the timing GPU simulator.
 *
 * The GPU driver invokes the policy on every page fault; reference (page
 * walk hit) information arrives either in exact order (the paper's "ideal
 * model", used for LRU/RRIP/CLOCK-Pro/MIN) or batched through the HIR cache
 * (HPE's realistic channel).
 */

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace hpe {

namespace trace {
class TraceSink;
} // namespace trace

/**
 * Abstract page eviction policy.
 *
 * Call protocol, enforced by the driver:
 *  - onHit(p):       a page-walk hit on resident page p (ideal channel).
 *  - onFault(p):     translation for p faulted; p is not resident.
 *  - selectVictim(): GPU memory is full; return some resident page.
 *  - onEvict(p):     p was unmapped and transferred to the host.
 *  - onMigrateIn(p): p is now resident in GPU memory.
 *  - onPrefetchIn(p): p is now resident, but speculatively — no fault was
 *    observed.  Policies with a protected/probationary split insert p in
 *    the probationary (cold/HIR) tier so speculation cannot pollute the
 *    protected working set; the default treats it as an ordinary arrival.
 */
class EvictionPolicy
{
  public:
    virtual ~EvictionPolicy() = default;

    /** A reference to resident page @p page was observed. */
    virtual void onHit(PageId page) = 0;

    /** A page fault on @p page was observed (before any eviction). */
    virtual void onFault(PageId page) = 0;

    /** Select a resident page to evict; memory is full. */
    virtual PageId selectVictim() = 0;

    /** @p page has been evicted from GPU memory. */
    virtual void onEvict(PageId page) = 0;

    /** @p page has been migrated into GPU memory. */
    virtual void onMigrateIn(PageId page) = 0;

    /**
     * @p page has been speculatively migrated in (prefetch; no fault was
     * charged).  Overrides must leave the page eviction-preferred: it
     * earned residency by address adjacency, not by demonstrated reuse.
     */
    virtual void onPrefetchIn(PageId page) { onMigrateIn(page); }

    /** Human-readable policy name for reports. */
    virtual std::string name() const = 0;

    /**
     * Hint that at most @p frames pages will ever be resident at once —
     * the driver calls this once with the GPU memory capacity before the
     * first event, so policies can pre-size their indices and keep
     * rehashing/reallocation off the fault path.  Purely a performance
     * hint: it must not change any eviction decision.
     */
    virtual void reserveCapacity(std::size_t frames) { (void)frames; }

    /**
     * Attach a structured-event sink (nullable; null detaches).  Policies
     * with observable internal transitions — CLOCK-Pro's hot/cold (LIR/HIR)
     * moves, HPE's page-set chain ops — emit them through the sink; the
     * default keeps silent policies silent.  Purely observational: it must
     * not change any eviction decision.
     */
    virtual void setTraceSink(trace::TraceSink *sink) { (void)sink; }

    /**
     * The pages this policy currently believes are resident, in no
     * particular order — consumed by the cross-layer StateValidator to
     * check policy bookkeeping against the page table and frame pool.
     * Policies that keep no residency state return nullopt (the validator
     * then skips the policy leg of the check).
     */
    virtual std::optional<std::vector<PageId>>
    trackedResidentPages() const
    {
        return std::nullopt;
    }
};

} // namespace hpe
