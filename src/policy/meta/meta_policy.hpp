/**
 * @file
 * MetaPolicy — an adaptive eviction policy that hosts N candidate
 * policies and, per decision interval, lets one of them answer victim
 * selections.
 *
 * Architecture (docs/adaptive-policies.md has the full picture):
 *
 *  - Every hosted candidate receives *every* protocol event (onHit,
 *    onFault, onEvict, onMigrateIn, onPrefetchIn), so each candidate's
 *    internal bookkeeping always mirrors the true resident set.  Only the
 *    *active* candidate answers selectVictim(); switching the active
 *    candidate is therefore free of state transfer and safe at any
 *    boundary — the property the StateValidator property test pins.
 *
 *  - For set dueling, each candidate additionally owns a *sampled shadow
 *    simulation*: a second instance of the candidate policy driven over a
 *    leader group of pages (1-in-leaderFraction by address hash) with a
 *    proportionally scaled frame budget.  Shadow faults are what the duel
 *    counters compare — the honest generalization of DIP's leader sets,
 *    which measure each insertion policy on pages it actually governs.
 *
 *  - An online FeaturePipeline summarizes each interval (refault
 *    distances, page-set reuse, fault-run shape, fault rate) and feeds
 *    the pluggable Selector.  Every switch is appended to a replayable
 *    decision log and emitted as a policy_switch trace event, so adaptive
 *    behaviour is byte-pinned by the same golden digests as every other
 *    policy.
 */

#pragma once

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/stats.hpp"
#include "policy/eviction_policy.hpp"
#include "policy/meta/features.hpp"
#include "policy/meta/selectors.hpp"

namespace hpe::meta {

/** Which selector a MetaPolicy instance uses. */
enum class SelectorKind { Duel, Bandit };

/** Tuning knobs of MetaPolicy. */
struct MetaConfig
{
    SelectorKind selector = SelectorKind::Duel;
    /**
     * Demand references per decision interval.  The default is sized so
     * the phase slices of the MX* co-run schedules span several intervals
     * even at the CI scale of 0.1 — a switch lag of one interval must be
     * small against a phase, or adaptation can never pay for itself.
     */
    std::uint64_t intervalRefs = 256;
    /** 1-in-N pages lead a candidate's shadow group (duel). */
    std::uint32_t leaderFraction = 8;
    /** Duel counter saturation ceiling. */
    std::uint32_t pselMax = 1024;
    /**
     * Shadow-fault lead required to unseat the incumbent (duel).  Zero
     * keeps the duel maximally responsive; raise it if shadow groups are
     * noisy enough that one-fault wobbles flip the active policy — but
     * note that on the MX* co-run schedules hysteresis measurably hurts,
     * because the early flips it suppresses are exactly how the duel
     * escapes a candidate whose stable set never formed.
     */
    std::uint32_t switchMargin = 0;
    /** Bandit: explore on average 1-in-N intervals (0 = never). */
    std::uint32_t epsilonInverse = 16;
    /** Bandit: UCB exploration-bonus weight. */
    double ucbC = 0.5;
    /** Bandit exploration seed. */
    std::uint64_t seed = 1;
    /** log2 of the page-set size the feature pipeline aggregates at. */
    unsigned setShift = 4;

    /** Validate invariants for @p candidates hosted policies. */
    void
    validate(std::size_t candidates) const
    {
        HPE_ASSERT(candidates >= 2, "meta-policy needs >= 2 candidates");
        HPE_ASSERT(intervalRefs > 0, "decision interval must be positive");
        HPE_ASSERT(leaderFraction >= candidates,
                   "leader fraction {} cannot seat {} leader groups",
                   leaderFraction, candidates);
        HPE_ASSERT(pselMax >= 2, "psel ceiling must be at least 2");
        HPE_ASSERT(ucbC >= 0.0, "UCB weight must be non-negative");
    }
};

/**
 * One hosted candidate: a live instance mirroring the true resident set
 * and a shadow instance for the duel's sampled simulation.  The stat
 * registries are private to the meta-policy so candidates (HPE registers
 * counters) never collide with the run's own registry.
 */
struct MetaCandidate
{
    std::string name;
    std::unique_ptr<StatRegistry> liveStats;
    std::unique_ptr<EvictionPolicy> live;
    std::unique_ptr<StatRegistry> shadowStats;
    std::unique_ptr<EvictionPolicy> shadow;
};

/** Adaptive meta eviction policy; see file comment. */
class MetaPolicy : public EvictionPolicy
{
  public:
    /** One entry of the replayable decision log. */
    struct Decision
    {
        std::uint64_t interval = 0; ///< interval ordinal at the switch
        std::uint64_t atRef = 0;    ///< demand references seen so far
        std::uint32_t from = 0;     ///< candidate index before
        std::uint32_t to = 0;       ///< candidate index after
        std::uint64_t metricFrom = 0; ///< selector metric of `from`
        std::uint64_t metricTo = 0;   ///< selector metric of `to`

        bool
        operator==(const Decision &o) const
        {
            return interval == o.interval && atRef == o.atRef
                   && from == o.from && to == o.to
                   && metricFrom == o.metricFrom && metricTo == o.metricTo;
        }
    };

    MetaPolicy(const MetaConfig &cfg, std::vector<MetaCandidate> candidates);

    void onHit(PageId page) override;
    void onFault(PageId page) override;
    PageId selectVictim() override;
    void onEvict(PageId page) override;
    void onMigrateIn(PageId page) override;
    void onPrefetchIn(PageId page) override;
    std::string name() const override;
    void reserveCapacity(std::size_t frames) override;
    void setTraceSink(trace::TraceSink *sink) override;
    std::optional<std::vector<PageId>> trackedResidentPages() const override;

    /** Index of the candidate currently answering selectVictim(). */
    std::size_t activeIndex() const { return active_; }

    /** Name of the active candidate. */
    const std::string &activeName() const
    {
        return candidates_[active_].name;
    }

    std::size_t candidateCount() const { return candidates_.size(); }

    /** Hosted candidate names, in index order. */
    std::vector<std::string> candidateNames() const;

    /** Replayable switch log (equal runs produce equal logs). */
    const std::vector<Decision> &decisions() const { return decisions_; }

    /** Closed decision intervals so far. */
    std::uint64_t intervals() const { return intervalsClosed_; }

    /** Active-candidate switches so far. */
    std::uint64_t switches() const
    {
        return static_cast<std::uint64_t>(decisions_.size());
    }

  private:
    /** Sampled shadow simulation state of one candidate. */
    struct Shadow
    {
        std::unordered_set<PageId> resident;
    };

    void shadowReference(PageId page);
    void maybeCloseInterval();

    MetaConfig cfg_;
    std::vector<MetaCandidate> candidates_;
    std::unique_ptr<Selector> selector_;
    FeaturePipeline features_;
    std::vector<Shadow> shadows_;
    std::size_t active_ = 0;
    std::uint64_t refs_ = 0;          ///< demand references (hits + faults)
    std::size_t liveResident_ = 0;    ///< true resident-set size
    std::uint64_t intervalsClosed_ = 0;
    std::vector<Decision> decisions_;
    trace::TraceSink *sink_ = nullptr;
};

} // namespace hpe::meta
