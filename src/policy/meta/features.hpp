/**
 * @file
 * Online feature pipeline of the adaptive meta-policy.
 *
 * The pipeline consumes the same protocol events the policy itself sees
 * (onHit/onFault/onEvict) — no trace-sink round-trip, no second pass over
 * the reference stream — and folds them into per-interval features:
 *
 *  - *refault distance histogram*: for every fault on a page that was
 *    evicted earlier, the elapsed demand references since its eviction,
 *    log2-bucketed.  Short distances mean the resident set is being
 *    churned just below the reuse distance (the classic thrashing
 *    signature); long ones mean genuine phase re-entry.
 *  - *per-page-set reuse*: how many distinct 16-page sets an interval
 *    touches and how many references each touched set receives — the
 *    page-set granularity HPE's classifier works at (§IV-D).
 *  - *fault-batch shape*: lengths of runs of consecutive faults with no
 *    intervening hit.  Streaming phases produce long runs; pointer-chasing
 *    phases produce short, scattered ones.
 *  - *interval fault rate*: faults / references, the bandit's reward
 *    signal.
 *
 * Everything is integer or IEEE-deterministic arithmetic over a stream
 * whose order is fixed by the simulator, so features — and every decision
 * derived from them — are bit-stable across --jobs and platforms.
 */

#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>

#include "common/types.hpp"

namespace hpe::meta {

/** Number of log2 buckets of the refault-distance histogram. */
inline constexpr std::size_t kRefaultBuckets = 24;

/** Feature snapshot of one decision interval. */
struct IntervalFeatures
{
    std::uint64_t index = 0; ///< interval ordinal (0-based)
    std::uint64_t refs = 0;  ///< demand references (hits + faults)
    std::uint64_t hits = 0;
    std::uint64_t faults = 0;
    std::uint64_t refaults = 0; ///< faults on previously evicted pages
    /** faults / refs; 0 for an empty interval. */
    double faultRate = 0.0;
    /** Refault distances (refs since eviction), log2-bucketed. */
    std::array<std::uint64_t, kRefaultBuckets> refaultDistanceLog2{};
    /** Mean log2 refault distance bucket; 0 with no refaults. */
    double meanRefaultDistanceLog2 = 0.0;
    /** Longest run of consecutive faults (no intervening hit). */
    std::uint64_t maxFaultRun = 0;
    /** Mean fault-run length; 0 with no faults. */
    double meanFaultRun = 0.0;
    /** Distinct page sets touched. */
    std::uint64_t distinctSets = 0;
    /** Mean references per touched page set; 0 with no refs. */
    double meanSetReuse = 0.0;
};

/** Streaming feature extractor; see file comment. */
class FeaturePipeline
{
  public:
    /** @param setShift log2 of the page-set size (4 = 16-page sets). */
    explicit FeaturePipeline(unsigned setShift = 4) : setShift_(setShift) {}

    /** A demand reference hit resident page @p page. */
    void
    onHit(PageId page)
    {
        ++refs_;
        ++hits_;
        closeFaultRun();
        ++setRefs_[page >> setShift_];
    }

    /** A demand reference faulted on non-resident page @p page. */
    void
    onFault(PageId page)
    {
        ++refs_;
        ++faults_;
        ++faultRun_;
        ++setRefs_[page >> setShift_];
        const auto it = evictedAt_.find(page);
        if (it == evictedAt_.end())
            return;
        ++refaults_;
        const std::uint64_t distance = totalRefs() - it->second;
        unsigned bucket = 0;
        while ((std::uint64_t{1} << (bucket + 1)) <= distance
               && bucket + 1 < kRefaultBuckets)
            ++bucket;
        ++refaultHist_[bucket];
        refaultBucketSum_ += bucket;
        evictedAt_.erase(it);
    }

    /** Page @p page left GPU memory (starts its refault-distance clock). */
    void onEvict(PageId page) { evictedAt_[page] = totalRefs(); }

    /** Demand references observed since construction (interval clock). */
    std::uint64_t totalRefs() const { return totalRefs_ + refs_; }

    /** Close the current interval and return its features. */
    IntervalFeatures
    endInterval()
    {
        closeFaultRun();
        IntervalFeatures f;
        f.index = intervals_++;
        f.refs = refs_;
        f.hits = hits_;
        f.faults = faults_;
        f.refaults = refaults_;
        f.faultRate = refs_ == 0 ? 0.0
                                 : static_cast<double>(faults_)
                                       / static_cast<double>(refs_);
        f.refaultDistanceLog2 = refaultHist_;
        f.meanRefaultDistanceLog2 =
            refaults_ == 0 ? 0.0
                           : static_cast<double>(refaultBucketSum_)
                                 / static_cast<double>(refaults_);
        f.maxFaultRun = maxFaultRun_;
        f.meanFaultRun = faultRuns_ == 0
                             ? 0.0
                             : static_cast<double>(faultRunRefs_)
                                   / static_cast<double>(faultRuns_);
        f.distinctSets = setRefs_.size();
        f.meanSetReuse = setRefs_.empty()
                             ? 0.0
                             : static_cast<double>(refs_)
                                   / static_cast<double>(setRefs_.size());

        totalRefs_ += refs_;
        refs_ = hits_ = faults_ = refaults_ = 0;
        refaultHist_.fill(0);
        refaultBucketSum_ = 0;
        faultRuns_ = faultRunRefs_ = maxFaultRun_ = 0;
        setRefs_.clear();
        return f;
    }

  private:
    void
    closeFaultRun()
    {
        if (faultRun_ == 0)
            return;
        ++faultRuns_;
        faultRunRefs_ += faultRun_;
        maxFaultRun_ = std::max(maxFaultRun_, faultRun_);
        faultRun_ = 0;
    }

    unsigned setShift_;
    std::uint64_t intervals_ = 0;
    std::uint64_t totalRefs_ = 0; ///< refs of *closed* intervals
    std::uint64_t refs_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t faults_ = 0;
    std::uint64_t refaults_ = 0;
    std::array<std::uint64_t, kRefaultBuckets> refaultHist_{};
    std::uint64_t refaultBucketSum_ = 0;
    std::uint64_t faultRun_ = 0;    ///< current open run
    std::uint64_t faultRuns_ = 0;   ///< closed runs this interval
    std::uint64_t faultRunRefs_ = 0;
    std::uint64_t maxFaultRun_ = 0;
    /** page set -> references this interval */
    std::unordered_map<std::uint64_t, std::uint64_t> setRefs_;
    /** page -> totalRefs() at its last eviction */
    std::unordered_map<PageId, std::uint64_t> evictedAt_;
};

} // namespace hpe::meta
