/**
 * @file
 * Pluggable interval selectors of the adaptive meta-policy.
 *
 * A selector answers one question at every interval boundary: which of
 * the N hosted candidate policies should select victims next?  Two
 * strategies are provided:
 *
 *  - DuelSelector — set dueling generalized from DIP's two insertion
 *    depths (src/policy/dip.hpp) to whole policies.  Each candidate owns
 *    a *leader group* of pages (by address hash) that is replayed through
 *    a sampled shadow simulation of that candidate; shadow faults feed a
 *    per-candidate saturating counter (the PSEL generalization), and the
 *    candidate with the fewest charged faults wins the next interval.
 *    Counters halve at each boundary so stale phases age out.
 *
 *  - BanditSelector — a seeded epsilon-greedy/UCB bandit whose arms are
 *    the candidates and whose reward is (1 - interval fault rate) of the
 *    arm that actually ran.  Exploration is driven by an explicitly
 *    seeded Rng, so a fixed seed gives a bit-identical decision sequence.
 *
 * Both are deterministic functions of the (ordered) event stream plus the
 * seed — the property the golden-pin and --jobs determinism tests rely on.
 */

#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "policy/meta/features.hpp"
#include "trace/events.hpp"

namespace hpe::meta {

/** Interval-boundary policy selector; see file comment. */
class Selector
{
  public:
    virtual ~Selector() = default;

    /** A shadow simulation of candidate @p candidate took a fault. */
    virtual void onShadowFault(std::size_t candidate) { (void)candidate; }

    /**
     * Close an interval: absorb @p f (produced while @p active ran) and
     * return the candidate for the next interval (possibly @p active).
     */
    virtual std::size_t decide(const IntervalFeatures &f,
                               std::size_t active) = 0;

    /** Current score of @p candidate, as a stable integer for the
     *  decision log (lower is better for duel, higher for bandit). */
    virtual std::uint64_t metric(std::size_t candidate) const = 0;

    /** Which selector this is, for the policy_switch trace event. */
    virtual trace::MetaSelector kind() const = 0;
};

/** Set-dueling over per-candidate shadow-fault counters. */
class DuelSelector : public Selector
{
  public:
    /**
     * @param candidates   number of hosted candidates.
     * @param pselMax      counter saturation ceiling.
     * @param switchMargin lead (in charged faults) a challenger needs
     *                     over the active candidate before a switch.
     */
    DuelSelector(std::size_t candidates, std::uint32_t pselMax,
                 std::uint32_t switchMargin)
        : pselMax_(pselMax), margin_(switchMargin), counters_(candidates, 0)
    {
        HPE_ASSERT(candidates >= 2, "dueling needs at least two candidates");
        HPE_ASSERT(pselMax >= 2, "psel ceiling must be at least 2");
    }

    void
    onShadowFault(std::size_t candidate) override
    {
        if (counters_[candidate] < pselMax_)
            ++counters_[candidate];
    }

    std::size_t
    decide(const IntervalFeatures &, std::size_t active) override
    {
        // Lowest counter wins (lowest index on ties); the incumbent is
        // only unseated by a challenger leading by more than the margin,
        // so the decision is total-order deterministic and hysteretic.
        std::size_t best = 0;
        for (std::size_t i = 1; i < counters_.size(); ++i)
            if (counters_[i] < counters_[best])
                best = i;
        const std::size_t next =
            best != active && counters_[best] + margin_ < counters_[active]
                ? best
                : active;
        // Halve-decay: recent shadow faults dominate, old phases age out.
        for (std::uint32_t &c : counters_)
            c /= 2;
        return next;
    }

    std::uint64_t metric(std::size_t c) const override { return counters_[c]; }

    trace::MetaSelector kind() const override
    {
        return trace::MetaSelector::Duel;
    }

  private:
    std::uint32_t pselMax_;
    std::uint32_t margin_;
    std::vector<std::uint32_t> counters_;
};

/** Seeded epsilon-greedy/UCB bandit on interval fault-rate reward. */
class BanditSelector : public Selector
{
  public:
    /**
     * @param candidates     number of arms.
     * @param seed           exploration RNG seed.
     * @param epsilonInverse explore on average 1-in-N intervals (0 = never).
     * @param ucbC           UCB exploration-bonus weight (0 = greedy).
     */
    BanditSelector(std::size_t candidates, std::uint64_t seed,
                   std::uint32_t epsilonInverse, double ucbC)
        : epsilonInverse_(epsilonInverse), ucbC_(ucbC), rng_(seed),
          arms_(candidates)
    {
        HPE_ASSERT(candidates >= 2, "bandit needs at least two arms");
    }

    std::size_t
    decide(const IntervalFeatures &f, std::size_t active) override
    {
        // The interval ran under `active`: that arm earns the reward.
        Arm &arm = arms_[active];
        const double reward = 1.0 - f.faultRate;
        ++arm.pulls;
        ++totalPulls_;
        arm.meanReward += (reward - arm.meanReward)
                          / static_cast<double>(arm.pulls);

        // Cold start: pull every arm once, in index order.
        for (std::size_t i = 0; i < arms_.size(); ++i)
            if (arms_[i].pulls == 0)
                return i;
        // Epsilon exploration from the seeded stream.
        if (epsilonInverse_ > 0 && rng_.below(epsilonInverse_) == 0)
            return static_cast<std::size_t>(rng_.below(arms_.size()));
        // UCB1 exploitation: mean + c*sqrt(ln(total)/pulls).
        std::size_t best = 0;
        double bestScore = score(0);
        for (std::size_t i = 1; i < arms_.size(); ++i)
            if (const double s = score(i); s > bestScore) {
                best = i;
                bestScore = s;
            }
        return best;
    }

    std::uint64_t
    metric(std::size_t c) const override
    {
        // Mean reward in fixed-point millionths: stable across platforms
        // because the mean itself is a deterministic IEEE computation.
        return static_cast<std::uint64_t>(arms_[c].meanReward * 1e6);
    }

    trace::MetaSelector kind() const override
    {
        return trace::MetaSelector::Bandit;
    }

  private:
    struct Arm
    {
        std::uint64_t pulls = 0;
        double meanReward = 0.0;
    };

    double
    score(std::size_t i) const
    {
        const Arm &arm = arms_[i];
        return arm.meanReward
               + ucbC_
                     * std::sqrt(std::log(static_cast<double>(totalPulls_))
                                 / static_cast<double>(arm.pulls));
    }

    std::uint32_t epsilonInverse_;
    double ucbC_;
    Rng rng_;
    std::vector<Arm> arms_;
    std::uint64_t totalPulls_ = 0;
};

} // namespace hpe::meta
