#include "policy/meta/meta_policy.hpp"

#include "trace/trace_sink.hpp"

namespace hpe::meta {

namespace {

/** DIP's address hash (dip.hpp), reused so leader spreading matches. */
std::uint64_t
hashPage(PageId page)
{
    return (page * 0x9e3779b97f4a7c15ULL) >> 32;
}

} // namespace

MetaPolicy::MetaPolicy(const MetaConfig &cfg,
                       std::vector<MetaCandidate> candidates)
    : cfg_(cfg), candidates_(std::move(candidates)),
      features_(cfg.setShift), shadows_(candidates_.size())
{
    cfg_.validate(candidates_.size());
    for (const MetaCandidate &c : candidates_) {
        HPE_ASSERT(c.live != nullptr, "candidate '{}' has no live instance",
                   c.name);
        HPE_ASSERT(cfg_.selector != SelectorKind::Duel || c.shadow != nullptr,
                   "dueling candidate '{}' has no shadow instance", c.name);
    }
    if (cfg_.selector == SelectorKind::Duel)
        selector_ = std::make_unique<DuelSelector>(
            candidates_.size(), cfg_.pselMax, cfg_.switchMargin);
    else
        selector_ = std::make_unique<BanditSelector>(
            candidates_.size(), cfg_.seed, cfg_.epsilonInverse, cfg_.ucbC);
}

void
MetaPolicy::onHit(PageId page)
{
    ++refs_;
    features_.onHit(page);
    shadowReference(page);
    for (MetaCandidate &c : candidates_)
        c.live->onHit(page);
    maybeCloseInterval();
}

void
MetaPolicy::onFault(PageId page)
{
    ++refs_;
    features_.onFault(page);
    shadowReference(page);
    for (MetaCandidate &c : candidates_)
        c.live->onFault(page);
    maybeCloseInterval();
}

PageId
MetaPolicy::selectVictim()
{
    return candidates_[active_].live->selectVictim();
}

void
MetaPolicy::onEvict(PageId page)
{
    features_.onEvict(page);
    for (MetaCandidate &c : candidates_)
        c.live->onEvict(page);
    --liveResident_;
}

void
MetaPolicy::onMigrateIn(PageId page)
{
    for (MetaCandidate &c : candidates_)
        c.live->onMigrateIn(page);
    ++liveResident_;
}

void
MetaPolicy::onPrefetchIn(PageId page)
{
    // Speculative arrivals reach every candidate through its own
    // cold-tier handling; they are not demand references, so neither the
    // feature pipeline nor the shadow simulations see them.
    for (MetaCandidate &c : candidates_)
        c.live->onPrefetchIn(page);
    ++liveResident_;
}

std::string
MetaPolicy::name() const
{
    return cfg_.selector == SelectorKind::Duel ? "Meta-duel" : "Meta-bandit";
}

void
MetaPolicy::reserveCapacity(std::size_t frames)
{
    for (MetaCandidate &c : candidates_) {
        c.live->reserveCapacity(frames);
        if (c.shadow != nullptr)
            c.shadow->reserveCapacity(frames / cfg_.leaderFraction + 1);
    }
}

void
MetaPolicy::setTraceSink(trace::TraceSink *sink)
{
    // The sink carries the meta-policy's own policy_switch events.  It is
    // deliberately *not* forwarded to the candidates: shadow instances and
    // inactive live instances would emit internal transitions (CLOCK-Pro
    // promotions, HPE chain ops) for decisions that never reach GPU
    // memory, polluting the digest with counterfactuals.
    sink_ = sink;
}

std::optional<std::vector<PageId>>
MetaPolicy::trackedResidentPages() const
{
    return candidates_[active_].live->trackedResidentPages();
}

std::vector<std::string>
MetaPolicy::candidateNames() const
{
    std::vector<std::string> names;
    names.reserve(candidates_.size());
    for (const MetaCandidate &c : candidates_)
        names.push_back(c.name);
    return names;
}

void
MetaPolicy::shadowReference(PageId page)
{
    if (cfg_.selector != SelectorKind::Duel)
        return; // the bandit scores real intervals, not shadows
    const std::uint64_t bucket = hashPage(page) % cfg_.leaderFraction;
    if (bucket >= candidates_.size())
        return; // follower page: no shadow group
    const auto i = static_cast<std::size_t>(bucket);
    Shadow &shadow = shadows_[i];
    EvictionPolicy &policy = *candidates_[i].shadow;
    if (shadow.resident.contains(page)) {
        policy.onHit(page);
        return;
    }
    selector_->onShadowFault(i);
    policy.onFault(page);
    // The shadow frame budget scales with the true resident set: the
    // group holds ~1/leaderFraction of the pages, so ~1/leaderFraction of
    // the frames models the same memory pressure.  liveResident_ only
    // grows until memory fills, so the budget never shrinks mid-run.
    const std::size_t budget =
        std::max<std::size_t>(4, liveResident_ / cfg_.leaderFraction);
    while (shadow.resident.size() >= budget) {
        const PageId victim = policy.selectVictim();
        policy.onEvict(victim);
        shadow.resident.erase(victim);
    }
    shadow.resident.insert(page);
    policy.onMigrateIn(page);
}

void
MetaPolicy::maybeCloseInterval()
{
    if (refs_ % cfg_.intervalRefs != 0)
        return;
    const IntervalFeatures f = features_.endInterval();
    ++intervalsClosed_;
    const std::size_t next = selector_->decide(f, active_);
    if (next == active_)
        return;
    Decision d;
    d.interval = f.index;
    d.atRef = refs_;
    d.from = static_cast<std::uint32_t>(active_);
    d.to = static_cast<std::uint32_t>(next);
    d.metricFrom = selector_->metric(active_);
    d.metricTo = selector_->metric(next);
    decisions_.push_back(d);
    if (sink_ != nullptr)
        sink_->emit(trace::EventKind::PolicySwitch,
                    static_cast<std::uint8_t>(selector_->kind()),
                    static_cast<std::uint64_t>(next),
                    (static_cast<std::uint64_t>(active_) << 32)
                        | (d.metricTo & 0xffffffffULL));
    active_ = next;
}

} // namespace hpe::meta
