/**
 * @file
 * Page-level LRU, the baseline policy of the paper.
 *
 * Per the paper's "ideal model", both page-walk hits and page faults update
 * the recency chain in exact reference order with no transfer latency.
 */

#pragma once

#include <memory>
#include <unordered_map>

#include "common/intrusive_list.hpp"
#include "common/types.hpp"
#include "policy/eviction_policy.hpp"

namespace hpe {

/** Exact page-granularity LRU chain. */
class LruPolicy : public EvictionPolicy
{
  public:
    void
    onHit(PageId page) override
    {
        auto it = nodes_.find(page);
        if (it != nodes_.end())
            chain_.moveToBack(*it->second);
    }

    void onFault(PageId) override {}

    PageId
    selectVictim() override
    {
        HPE_ASSERT(!chain_.empty(), "LRU victim request with no resident pages");
        return chain_.front().page;
    }

    void
    onEvict(PageId page) override
    {
        auto it = nodes_.find(page);
        HPE_ASSERT(it != nodes_.end(), "evicting untracked page {:#x}", page);
        chain_.remove(*it->second);
        nodes_.erase(it);
    }

    void
    onMigrateIn(PageId page) override
    {
        auto node = std::make_unique<Node>();
        node->page = page;
        chain_.pushBack(*node);
        nodes_.emplace(page, std::move(node));
    }

    /** Speculative arrivals enter at the LRU (cold) end: a prefetched
     *  page is the first victim unless it proves itself with a hit. */
    void
    onPrefetchIn(PageId page) override
    {
        auto node = std::make_unique<Node>();
        node->page = page;
        chain_.pushFront(*node);
        nodes_.emplace(page, std::move(node));
    }

    std::string name() const override { return "LRU"; }

    void reserveCapacity(std::size_t frames) override { nodes_.reserve(frames); }

    std::optional<std::vector<PageId>>
    trackedResidentPages() const override
    {
        std::vector<PageId> pages;
        pages.reserve(nodes_.size());
        for (const auto &[page, node] : nodes_)
            pages.push_back(page);
        return pages;
    }

    /** Number of tracked resident pages (for tests). */
    std::size_t size() const { return nodes_.size(); }

  private:
    struct Node : IntrusiveNode
    {
        PageId page = kInvalidId;
    };

    IntrusiveList<Node> chain_;
    std::unordered_map<PageId, std::unique_ptr<Node>> nodes_;
};

} // namespace hpe
