/**
 * @file
 * Page-level LRU, the baseline policy of the paper.
 *
 * Per the paper's "ideal model", both page-walk hits and page faults update
 * the recency chain in exact reference order with no transfer latency.
 *
 * The chain is a DensePageChain: struct-of-arrays links with a
 * direct-indexed page->slot map, so the per-reference recency update is
 * two array writes instead of a hash probe plus a heap-node relink.
 */

#pragma once

#include "common/types.hpp"
#include "mem/page_index.hpp"
#include "policy/eviction_policy.hpp"

namespace hpe {

/** Exact page-granularity LRU chain (front = LRU victim, back = MRU). */
class LruPolicy : public EvictionPolicy
{
  public:
    void onHit(PageId page) override { chain_.moveToBack(page); }

    void onFault(PageId) override {}

    PageId
    selectVictim() override
    {
        HPE_ASSERT(!chain_.empty(), "LRU victim request with no resident pages");
        return chain_.front();
    }

    void
    onEvict(PageId page) override
    {
        const bool tracked = chain_.remove(page);
        HPE_ASSERT(tracked, "evicting untracked page {:#x}", page);
    }

    void onMigrateIn(PageId page) override { chain_.pushBack(page); }

    /** Speculative arrivals enter at the LRU (cold) end: a prefetched
     *  page is the first victim unless it proves itself with a hit. */
    void onPrefetchIn(PageId page) override { chain_.pushFront(page); }

    std::string name() const override { return "LRU"; }

    void reserveCapacity(std::size_t frames) override { chain_.reserve(frames); }

    std::optional<std::vector<PageId>>
    trackedResidentPages() const override
    {
        std::vector<PageId> pages;
        pages.reserve(chain_.size());
        chain_.forEach([&pages](PageId page) { pages.push_back(page); });
        return pages;
    }

    /** Number of tracked resident pages (for tests). */
    std::size_t size() const { return chain_.size(); }

  private:
    DensePageChain chain_;
};

} // namespace hpe
