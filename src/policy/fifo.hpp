/**
 * @file
 * FIFO eviction — the simplest ordering baseline (and the running example
 * of docs/adding-a-policy.md).  Evicts pages in arrival order regardless
 * of references; exhibits Belady's anomaly, which LRU/MIN (stack
 * algorithms) cannot.
 */

#pragma once

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "common/log.hpp"
#include "common/types.hpp"
#include "policy/eviction_policy.hpp"

namespace hpe {

/** First-in first-out page eviction. */
class FifoPolicy : public EvictionPolicy
{
  public:
    void onHit(PageId) override {}
    void onFault(PageId) override {}

    PageId
    selectVictim() override
    {
        HPE_ASSERT(!queue_.empty(), "FIFO victim request with no pages");
        return queue_.front();
    }

    void
    onEvict(PageId page) override
    {
        // Normally the driver evicts exactly selectVictim() == front, but
        // a hosting meta-policy broadcasts evictions chosen by whichever
        // candidate is active, so any resident page may be evicted.
        HPE_ASSERT(resident_.erase(page) == 1,
                   "FIFO eviction of non-resident page {:#x}", page);
        if (!queue_.empty() && queue_.front() == page) {
            queue_.pop_front();
            return;
        }
        const auto it = std::find(queue_.begin(), queue_.end(), page);
        HPE_ASSERT(it != queue_.end(),
                   "FIFO queue lost track of page {:#x}", page);
        queue_.erase(it);
    }

    void
    onMigrateIn(PageId page) override
    {
        const auto [it, inserted] = resident_.insert(page);
        (void)it;
        HPE_ASSERT(inserted, "double migrate-in of page {:#x}", page);
        queue_.push_back(page);
    }

    std::string name() const override { return "FIFO"; }

    void reserveCapacity(std::size_t frames) override { resident_.reserve(frames); }

    std::optional<std::vector<PageId>>
    trackedResidentPages() const override
    {
        return std::vector<PageId>(resident_.begin(), resident_.end());
    }

  private:
    std::deque<PageId> queue_;
    std::unordered_set<PageId> resident_;
};

} // namespace hpe
