/**
 * @file
 * Uniform-random eviction, the policy Zheng et al. found competitive with
 * LRU for many workloads (and which the paper compares against in Fig. 12).
 */

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "policy/eviction_policy.hpp"

namespace hpe {

/** Evicts a uniformly random resident page; O(1) per operation. */
class RandomPolicy : public EvictionPolicy
{
  public:
    /** @param seed RNG seed; fixed per experiment for reproducibility. */
    explicit RandomPolicy(std::uint64_t seed = 1) : rng_(seed) {}

    void onHit(PageId) override {}
    void onFault(PageId) override {}

    PageId
    selectVictim() override
    {
        HPE_ASSERT(!pages_.empty(), "Random victim request with no resident pages");
        return pages_[rng_.below(pages_.size())];
    }

    void
    onEvict(PageId page) override
    {
        auto it = index_.find(page);
        HPE_ASSERT(it != index_.end(), "evicting untracked page {:#x}", page);
        // Swap-remove to keep the resident vector dense.
        const std::size_t pos = it->second;
        pages_[pos] = pages_.back();
        index_[pages_[pos]] = pos;
        pages_.pop_back();
        index_.erase(page);
    }

    void
    onMigrateIn(PageId page) override
    {
        index_.emplace(page, pages_.size());
        pages_.push_back(page);
    }

    std::string name() const override { return "Random"; }

    void
    reserveCapacity(std::size_t frames) override
    {
        pages_.reserve(frames);
        index_.reserve(frames);
    }

    std::optional<std::vector<PageId>>
    trackedResidentPages() const override
    {
        return pages_;
    }

  private:
    Rng rng_;
    std::vector<PageId> pages_;
    std::unordered_map<PageId, std::size_t> index_;
};

} // namespace hpe
