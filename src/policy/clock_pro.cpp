#include "policy/clock_pro.hpp"

#include "common/log.hpp"
#include "trace/trace_sink.hpp"

namespace hpe {

ClockProPolicy::ClockProPolicy(const ClockProConfig &cfg)
    : cfg_(cfg)
{
    HPE_ASSERT(cfg.coldAllocation > 0, "cold allocation must be positive");
}

ClockProPolicy::~ClockProPolicy() = default;

void
ClockProPolicy::emitTransition(bool promotion, PageId page)
{
    if (sink_ == nullptr)
        return;
    sink_->emit(promotion ? trace::EventKind::Promotion
                          : trace::EventKind::Demotion,
                static_cast<std::uint8_t>(trace::PromotionScope::ClockProPage),
                page, 0);
}

ClockProPolicy::Node *
ClockProPolicy::clockNext(Node *hand)
{
    if (hand == nullptr)
        return clock_.empty() ? nullptr : &clock_.front();
    Node *n = clock_.next(*hand);
    return n != nullptr ? n : (clock_.empty() ? nullptr : &clock_.front());
}

void
ClockProPolicy::unlink(Node &node)
{
    // A hand parked on a removed node advances first so it never dangles.
    for (Node **hand : {&handCold_, &handHot_, &handTest_}) {
        if (*hand == &node) {
            *hand = clock_.next(node);
            // May still be null if node is the tail; clockNext() handles
            // wrap-around lazily on the next use.
        }
    }
    clock_.remove(node);
}

void
ClockProPolicy::onHit(PageId page)
{
    auto it = nodes_.find(page);
    if (it == nodes_.end())
        return;
    Node &n = *it->second;
    HPE_ASSERT(n.state != State::ColdNonResident,
               "walk hit on non-resident page {:#x}", page);
    // References only set the bit; list movement happens at the hands.
    n.ref = true;
}

void
ClockProPolicy::onFault(PageId)
{
    // Promotion decisions are made at migrate-in, when the page's previous
    // test-period metadata (if any) is still available.
}

void
ClockProPolicy::runHandHot()
{
    // Demote the first hot page with a clear ref bit; clear bits and end
    // cold test periods along the way (as the original HAND_hot does).
    std::size_t guard = 2 * clock_.size() + 2;
    while (numHot_ > 0 && guard-- > 0) {
        handHot_ = clockNext(handHot_);
        Node &n = *handHot_;
        if (n.state == State::Hot) {
            if (n.ref) {
                n.ref = false;
            } else {
                n.state = State::ColdResident;
                n.test = false;
                --numHot_;
                ++numColdRes_;
                emitTransition(/*promotion=*/false, n.page);
                return;
            }
        } else if (n.state == State::ColdNonResident) {
            Node *victim = handHot_;
            handHot_ = clock_.prev(n); // advance past it on next call
            unlink(*victim);
            --numColdNonRes_;
            nodes_.erase(victim->page);
        } else {
            // Resident cold page: passing HAND_hot terminates its test.
            n.test = false;
        }
    }
}

void
ClockProPolicy::runHandTest()
{
    std::size_t guard = clock_.size() + 1;
    while ((numColdNonRes_ > 0 || numColdRes_ > 0) && guard-- > 0) {
        handTest_ = clockNext(handTest_);
        Node &n = *handTest_;
        if (n.state == State::ColdNonResident) {
            Node *victim = handTest_;
            handTest_ = clock_.prev(n);
            unlink(*victim);
            --numColdNonRes_;
            nodes_.erase(victim->page);
            return;
        }
        if (n.state == State::ColdResident && n.test) {
            n.test = false;
            return;
        }
    }
}

PageId
ClockProPolicy::selectVictim()
{
    HPE_ASSERT(numColdRes_ + numHot_ > 0, "CLOCK-Pro victim request with no pages");
    // HAND_cold sweeps resident cold pages looking for an unreferenced one.
    for (;;) {
        if (numColdRes_ == 0) {
            // All residents are hot; force a demotion so a victim exists.
            runHandHot();
            if (numColdRes_ == 0) {
                // Pathological (e.g. every hot page referenced); sweep again.
                continue;
            }
        }
        handCold_ = clockNext(handCold_);
        Node &n = *handCold_;
        if (n.state != State::ColdResident)
            continue;
        if (n.ref) {
            if (n.test) {
                // Re-referenced within its test period: promote to hot.
                n.ref = false;
                n.test = false;
                n.state = State::Hot;
                --numColdRes_;
                ++numHot_;
                emitTransition(/*promotion=*/true, n.page);
                // Keep the resident cold allocation near m_c: a promotion
                // that drops cold residency below target demotes a hot page
                // (unless the whole population fits in the allocation).
                if (numColdRes_ < cfg_.coldAllocation && numHot_ > 0
                    && numHot_ + numColdRes_ > cfg_.coldAllocation)
                    runHandHot();
            } else {
                // Referenced but past its test: recycle with a fresh test.
                n.ref = false;
                n.test = true;
                Node *moved = handCold_;
                handCold_ = clock_.prev(n);
                clock_.remove(*moved);
                clock_.pushBack(*moved);
            }
            continue;
        }
        // Unreferenced resident cold page: this is the victim.
        return n.page;
    }
}

void
ClockProPolicy::onEvict(PageId page)
{
    auto it = nodes_.find(page);
    HPE_ASSERT(it != nodes_.end(), "evicting untracked page {:#x}", page);
    Node &n = *it->second;
    HPE_ASSERT(n.state != State::ColdNonResident, "evicting non-resident page");
    if (n.state == State::Hot) {
        // Forced eviction of a hot page (driver override); drop it entirely.
        --numHot_;
        unlink(n);
        nodes_.erase(it);
        return;
    }
    --numColdRes_;
    if (n.test) {
        // Keep metadata: if the page faults back in during its test period
        // it will be promoted to hot.
        n.state = State::ColdNonResident;
        ++numColdNonRes_;
        while (numColdNonRes_ > cfg_.maxNonResident)
            runHandTest();
    } else {
        unlink(n);
        nodes_.erase(it);
    }
}

void
ClockProPolicy::onMigrateIn(PageId page)
{
    auto it = nodes_.find(page);
    if (it != nodes_.end()) {
        // Faulted back during its test period: promote straight to hot
        // (its reuse distance beat a full cold-allocation sweep).
        Node &n = *it->second;
        HPE_ASSERT(n.state == State::ColdNonResident,
                   "migrate-in of already-resident page {:#x}", page);
        --numColdNonRes_;
        // Move to the newest clock position as a hot page.
        unlink(n);
        clock_.pushBack(n);
        n.state = State::Hot;
        n.ref = false;
        n.test = false;
        ++numHot_;
        emitTransition(/*promotion=*/true, page);
        // Rebalance only when the hot set crowds out the cold allocation
        // (m_h = M - m_c); small populations keep their hot pages.
        if (numColdRes_ < cfg_.coldAllocation
            && numHot_ + numColdRes_ > cfg_.coldAllocation)
            runHandHot();
        return;
    }
    insertNew(page);
}

void
ClockProPolicy::onPrefetchIn(PageId page)
{
    auto it = nodes_.find(page);
    if (it != nodes_.end()) {
        // The page has non-resident test metadata, but this arrival is
        // speculation, not a demonstrated refault — no hot promotion.
        // It rejoins the clock as a plain resident cold page.
        Node &n = *it->second;
        HPE_ASSERT(n.state == State::ColdNonResident,
                   "prefetch-in of already-resident page {:#x}", page);
        --numColdNonRes_;
        unlink(n);
        clock_.pushFront(n);
        n.state = State::ColdResident;
        n.ref = false;
        n.test = false;
        ++numColdRes_;
    } else {
        // Brand-new page: resident cold at the *oldest* clock position and
        // outside any test period, so HAND_cold reclaims it first unless a
        // real reference arrives.
        auto node = std::make_unique<Node>();
        Node &n = *node;
        n.page = page;
        n.state = State::ColdResident;
        n.test = false;
        clock_.pushFront(n);
        nodes_.emplace(page, std::move(node));
        ++numColdRes_;
    }
    // Observable cold placement of a speculative page (value 1 flags the
    // speculation, distinguishing it from hot->cold demotions).
    if (sink_ != nullptr)
        sink_->emit(trace::EventKind::Demotion,
                    static_cast<std::uint8_t>(trace::PromotionScope::ClockProPage),
                    page, 1);
}

std::optional<std::vector<PageId>>
ClockProPolicy::trackedResidentPages() const
{
    // Resident = hot + resident-cold; non-resident cold entries are test
    // metadata only and must not be reported.
    std::vector<PageId> pages;
    pages.reserve(numHot_ + numColdRes_);
    for (const auto &[page, node] : nodes_)
        if (node->state != State::ColdNonResident)
            pages.push_back(page);
    return pages;
}

ClockProPolicy::Node &
ClockProPolicy::insertNew(PageId page)
{
    auto node = std::make_unique<Node>();
    node->page = page;
    node->state = State::ColdResident;
    node->test = true;
    Node &ref = *node;
    clock_.pushBack(ref);
    nodes_.emplace(page, std::move(node));
    ++numColdRes_;
    return ref;
}

} // namespace hpe
