/**
 * @file
 * Parallel sweep engine.
 *
 * Every figure/table of the paper is a sweep over independent
 * (trace, policy, oversubscription, seed) simulations, and so are the
 * design-space explorations the ROADMAP aims at.  SweepRunner fans such
 * jobs out across a ThreadPool and reduces the results **in job-index
 * order**, so any output derived from them is byte-identical to a serial
 * run: parallelism changes wall-clock time, never a single table cell.
 *
 * Job-count resolution (resolveJobs): an explicit request wins; else the
 * HPE_JOBS environment variable; else the hardware thread count.  Every
 * consumer — the bench harness (--jobs), the CLI (--jobs), multi-app solo
 * baselines — resolves through this one funnel.
 *
 * Each job constructs its own StatRegistry and policy; traces are shared
 * read-only.  Nothing in a simulation run touches mutable global state,
 * which is what makes the fan-out safe (the determinism test and the
 * TSan CI job keep that true).
 */

#pragma once

#include <cstddef>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "sim/experiment.hpp"

namespace hpe {

/**
 * Resolve a job count: @p requested if nonzero, else the HPE_JOBS
 * environment variable (strictly parsed; fatal() on garbage), else the
 * hardware thread count.  Never returns 0.
 */
unsigned resolveJobs(unsigned requested = 0);

/** Per-job event-tracing request (value type — each job builds its own
 *  sink from it, so parallel jobs never share trace state). */
struct SweepTraceConfig
{
    bool enabled = false;
    trace::EventMask mask = trace::kAllEvents;
    std::size_t ringCapacity = 1u << 16;
};

/** One (trace, policy, oversubscription, seed) simulation request. */
struct SweepJob
{
    /** Workload; not owned, must outlive the sweep. */
    const Trace *trace = nullptr;
    PolicyKind kind = PolicyKind::Lru;
    RunConfig cfg{};
    /** Functional (exact counts) or timing (IPC) simulator. */
    bool functional = true;
    SweepTraceConfig trace_cfg{};
};

/** Outcome of one SweepJob (the half matching SweepJob::functional). */
struct SweepOutcome
{
    PagingResult paging{};
    TimingResult timing{};
    /** @{ valid when the job's SweepTraceConfig was enabled */
    std::uint64_t traceDigest = 0;
    std::uint64_t traceEvents = 0;
    /** @} */
};

/** Deterministic parallel map over independent simulation jobs. */
class SweepRunner
{
  public:
    /** @param jobs parallelism; 0 resolves via resolveJobs(). */
    explicit SweepRunner(unsigned jobs = 0) : pool_(resolveJobs(jobs)) {}

    /** Resolved parallelism degree. */
    unsigned jobs() const { return pool_.threads(); }

    /**
     * Evaluate fn(i) for every i in [0, n) across the pool and return the
     * results indexed by i — the deterministic-reduction primitive every
     * bench sweep is built on.  fn must not touch shared mutable state.
     */
    template <typename Fn>
    auto
    map(std::size_t n, Fn &&fn) -> std::vector<std::invoke_result_t<Fn &, std::size_t>>
    {
        using R = std::invoke_result_t<Fn &, std::size_t>;
        std::vector<std::optional<R>> slots(n);
        pool_.parallelFor(n, [&](std::size_t i) { slots[i].emplace(fn(i)); });
        std::vector<R> out;
        out.reserve(n);
        for (std::optional<R> &slot : slots)
            out.push_back(std::move(*slot));
        return out;
    }

    /** map() over a vector of inputs: results align with @p items. */
    template <typename T, typename Fn>
    auto
    mapItems(const std::vector<T> &items, Fn &&fn)
        -> std::vector<std::invoke_result_t<Fn &, const T &>>
    {
        return map(items.size(), [&](std::size_t i) { return fn(items[i]); });
    }

    /** Run typed simulation jobs; outcomes align with @p jobs. */
    std::vector<SweepOutcome> run(const std::vector<SweepJob> &jobs);

    /** The underlying pool (for callers composing their own fan-out). */
    ThreadPool &pool() { return pool_; }

  private:
    ThreadPool pool_;
};

} // namespace hpe
