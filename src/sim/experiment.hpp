/**
 * @file
 * Experiment runners shared by the benchmark harness, the examples, and
 * the integration tests: one call = one (workload, policy, configuration)
 * simulation, functional or timing.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/stats.hpp"
#include "core/hpe_config.hpp"
#include "gpu/gpu_system.hpp"
#include "sim/paging_simulator.hpp"
#include "sim/policy_factory.hpp"
#include "workload/trace.hpp"

namespace hpe {

/** Everything one experiment run depends on. */
struct RunConfig
{
    /** Fraction of the application footprint that fits in GPU memory
     *  (the paper's "oversubscription rate": 0.75 or 0.50). */
    double oversub = 0.75;
    HpeConfig hpe{};
    GpuConfig gpu{};
    std::uint64_t seed = 1;
};

/**
 * Observability attachments of one run, all nullable and caller-owned —
 * they stay out of RunConfig because configs are copied into parallel
 * sweep jobs, where sharing one sink across jobs would be a race.
 */
struct TraceAttachments
{
    trace::TraceSink *sink = nullptr;
    trace::IntervalRecorder *intervals = nullptr;
};

/** GPU memory capacity in frames for @p trace at @p oversub. */
std::size_t framesFor(const Trace &trace, double oversub);

/** Functional run: exact fault/eviction counts. */
PagingResult runFunctional(const Trace &trace, PolicyKind kind,
                           const RunConfig &cfg);

/** Timing run: IPC and host load. */
TimingResult runTiming(const Trace &trace, PolicyKind kind, const RunConfig &cfg);

/**
 * A run that keeps its policy and stats alive for introspection — used by
 * the benches that read HPE's classification, adjustment timeline, search
 * overhead, and HIR statistics.
 */
struct InspectableRun
{
    std::unique_ptr<StatRegistry> stats;
    std::unique_ptr<EvictionPolicy> policy;
    PagingResult paging;   ///< valid for functional runs
    TimingResult timing;   ///< valid for timing runs

    /** The policy as HPE, or null if another kind ran. */
    HpePolicy *hpe() const { return dynamic_cast<HpePolicy *>(policy.get()); }
};

/** Functional run retaining policy + stats. */
InspectableRun runFunctionalInspect(const Trace &trace, PolicyKind kind,
                                    const RunConfig &cfg,
                                    const TraceAttachments &attach = {});

/** Timing run retaining policy + stats. */
InspectableRun runTimingInspect(const Trace &trace, PolicyKind kind,
                                const RunConfig &cfg,
                                const TraceAttachments &attach = {});

} // namespace hpe
