/**
 * @file
 * Policy-tournament harness behind `hpe_sim tournament` and the CI
 * leaderboard gate.
 *
 * A tournament is a functional-mode sweep over the full cross product
 * (workload x policy x prefetcher x oversubscription), reduced into a
 * leaderboard: per-cell far-fault counts, per-policy geomean speedup
 * versus the LRU baseline, a pairwise win matrix, and the list of cells
 * where an adaptive meta-policy strictly beats every static candidate —
 * the claim ci/leaderboard_baseline.json pins.
 *
 * Determinism contract: cells are enumerated in one canonical order
 * (workload, oversubscription, prefetcher, policy) and reduced in that
 * order regardless of --jobs, every cell runs through the hpe::api
 * funnel (so its request fingerprint and trace digest match a solo
 * `hpe_sim run` of the same cell), and the JSON writer is the canonical
 * api::json dumper.  Equal configs therefore produce byte-identical
 * leaderboards at any parallelism — the property the golden-pin test
 * holds.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/json.hpp"

namespace hpe {

/** Stamp written into every leaderboard JSON; the CI gate refuses to
 *  compare files produced by a different tournament revision. */
inline constexpr const char *kTournamentToolVersion = "hpe-tournament/1";

/** The cross product one tournament evaluates. */
struct TournamentConfig
{
    std::vector<std::string> apps;
    std::vector<std::string> policies;
    std::vector<std::string> prefetchers;
    std::vector<double> oversubs;
    double scale = 0.1;
    std::uint64_t seed = 1;
    unsigned jobs = 0; ///< 0 = resolveJobs()

    /**
     * The pinned CI probe set: three Table II apps covering streaming,
     * thrashing and repetitive behaviour plus the three phase-changing
     * co-run schedules, the four meta candidates + both meta selectors,
     * all four prefetchers, two memory splits.
     */
    static TournamentConfig quick();

    /** Every app (Table II + extras + co-runs) over the same axes. */
    static TournamentConfig full();

    /** Total number of cells the cross product denotes. */
    std::size_t cellCount() const;
};

/** One evaluated (app, oversub, prefetch, policy) cell. */
struct TournamentCell
{
    std::string app;
    double oversub = 0.0;
    std::string prefetch;
    std::string policy;
    std::uint64_t references = 0;
    std::uint64_t faults = 0;
    std::uint64_t evictions = 0;
    std::uint64_t hits = 0;
    double faultRate = 0.0;
    std::string digest;      ///< event-stream digest (hex)
    std::string fingerprint; ///< canonical request fingerprint
};

/** Aggregated standings of one policy across all cells. */
struct TournamentRow
{
    std::string policy;
    std::uint64_t totalFaults = 0;
    /** Geomean over cells of (LRU faults / this policy's faults). */
    double geomeanSpeedupVsLru = 1.0;
    /** Cells where this policy strictly beats every other policy. */
    unsigned outrightWins = 0;
};

/** Full tournament outcome. */
struct Leaderboard
{
    TournamentConfig cfg;
    std::vector<TournamentCell> cells; ///< canonical cell order
    std::vector<TournamentRow> rows;   ///< sorted best geomean first
    /** winMatrix[i][j] = cells where policy i has strictly fewer faults
     *  than policy j (indices follow cfg.policies order). */
    std::vector<std::vector<unsigned>> winMatrix;
    /** "app/prefetch@oversub:policy" for every cell group where a Meta-*
     *  policy strictly beats every static policy in the tournament. */
    std::vector<std::string> metaBeatsAllStatics;

    /** Canonical JSON document (tool_version + config + cells + ranks). */
    api::json::Value toJson() const;

    /** Human leaderboard: standings, win matrix, meta-wins list. */
    std::string toMarkdown() const;
};

/** Run the tournament (parallelism from cfg.jobs; output deterministic). */
Leaderboard runTournament(const TournamentConfig &cfg);

} // namespace hpe
