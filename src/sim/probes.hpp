/**
 * @file
 * Standard interval-probe set shared by the functional and timing runs.
 *
 * Both simulators expose the same logical quantities under different stat
 * prefixes ("uvm" functional, "driver.uvm" timing); this helper attaches
 * the canonical column set to an IntervalRecorder so `--interval-stats`
 * output has one schema everywhere:
 *
 *   faults, evictions, refaults, hits, dirty_evictions   (deltas)
 *   occupancy                                            (gauge)
 *
 * and, when the policy under study is HPE:
 *
 *   strategy_switches, search_jumps                      (deltas)
 *   chain_length, hir_fill                               (gauges)
 *
 * DIP additionally exposes its duel selector (dip.psel gauge), and the
 * adaptive meta-policy its active candidate index + cumulative switch
 * count (meta_active, meta_switches gauges) — the observability the
 * feature-pipeline tests and the tournament leaderboard read.
 */

#pragma once

#include <string>

#include "common/stats.hpp"
#include "core/hpe_policy.hpp"
#include "driver/uvm_manager.hpp"
#include "mem/coalescer.hpp"
#include "mem/page_size.hpp"
#include "policy/dip.hpp"
#include "policy/eviction_policy.hpp"
#include "policy/meta/meta_policy.hpp"
#include "trace/interval_recorder.hpp"

namespace hpe {

/**
 * Attach the canonical probe columns.  Must run after the components have
 * registered their stats and before the first reference is accounted.
 *
 * @param rec       the recorder receiving columns.
 * @param stats     registry the run's components registered into.
 * @param uvm       the memory manager (occupancy gauge).
 * @param policy    policy under study; HPE gains its structure columns.
 * @param uvmPrefix stat prefix of @p uvm ("uvm" or "driver.uvm").
 */
inline void
attachIntervalProbes(trace::IntervalRecorder &rec, const StatRegistry &stats,
                     const UvmMemoryManager &uvm, EvictionPolicy &policy,
                     const std::string &uvmPrefix)
{
    rec.addCounter("faults", stats.findCounter(uvmPrefix + ".faults"));
    rec.addCounter("evictions", stats.findCounter(uvmPrefix + ".evictions"));
    rec.addCounter("refaults", stats.findCounter(uvmPrefix + ".refaults"));
    rec.addCounter("hits", stats.findCounter(uvmPrefix + ".hits"));
    rec.addCounter("dirty_evictions",
                   stats.findCounter(uvmPrefix + ".dirtyEvictions"));
    rec.addGauge("occupancy", [&uvm] {
        return static_cast<std::uint64_t>(uvm.residentPages());
    });

    // Page-size columns exist only when the multi-page-size axis is
    // attached, so the default CSV schema (and the golden files pinning
    // it) is unchanged.  Fragmentation is read straight off the frame
    // allocator's free-run bitmap.
    if (const HugePageCoalescer *co = uvm.coalescer(); co != nullptr) {
        const auto &frames = uvm.frames();
        rec.addGauge("large_pages", [co] {
            return static_cast<std::uint64_t>(co->largePages());
        });
        rec.addGauge("covered_pages", [co] {
            return static_cast<std::uint64_t>(co->coveredPages());
        });
        rec.addGauge("coalesce_promotions", [co] { return co->promotions(); });
        rec.addGauge("coalesce_blocked",
                     [co] { return co->blockedPromotions(); });
        rec.addGauge("splinters", [co] { return co->splinters(); });
        for (unsigned order : co->config().largeOrders)
            rec.addGauge("free_runs_" + PageSizeConfig::sizeName(order),
                         [&frames, order] {
                             return static_cast<std::uint64_t>(
                                 frames.freeRunsOf(std::uint32_t{1} << order));
                         });
    }

    if (auto *hpe = dynamic_cast<HpePolicy *>(&policy); hpe != nullptr) {
        // The adjustment controller registers lazily with the first
        // eviction epoch, but HpePolicy constructs it eagerly, so the
        // counters exist by the time a run is assembled; guard anyway so
        // a future lazy registration degrades to missing columns, not a
        // crash.
        if (stats.hasCounter("hpe.adjust.strategySwitches"))
            rec.addCounter("strategy_switches",
                           stats.findCounter("hpe.adjust.strategySwitches"));
        if (stats.hasCounter("hpe.adjust.searchJumps"))
            rec.addCounter("search_jumps",
                           stats.findCounter("hpe.adjust.searchJumps"));
        rec.addGauge("chain_length", [hpe] {
            return static_cast<std::uint64_t>(hpe->chain().size());
        });
        rec.addGauge("hir_fill", [hpe] {
            return static_cast<std::uint64_t>(hpe->hir().occupancy());
        });
    }

    if (auto *dip = dynamic_cast<DipPolicy *>(&policy); dip != nullptr)
        rec.addGauge("dip.psel", [dip] {
            return static_cast<std::uint64_t>(dip->psel());
        });

    if (auto *m = dynamic_cast<meta::MetaPolicy *>(&policy); m != nullptr) {
        rec.addGauge("meta_active", [m] {
            return static_cast<std::uint64_t>(m->activeIndex());
        });
        rec.addGauge("meta_switches", [m] { return m->switches(); });
    }
}

} // namespace hpe
