/**
 * @file
 * Multi-application sharing study (functional).
 *
 * The paper's related work covers MASK [21], which redesigns the memory
 * hierarchy for concurrent GPU applications; eviction policies interact
 * with sharing because one app's faults can evict another's working set.
 * This driver co-runs N workloads against ONE shared GPU memory and one
 * policy instance: their canonical traces interleave round-robin
 * (weighted by trace length so all finish together), each app's pages are
 * isolated in its own address-space slice, and per-app fault counts
 * expose both slowdown and fairness.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "core/hpe_config.hpp"
#include "sim/policy_factory.hpp"
#include "workload/trace.hpp"

namespace hpe {

/** Per-application outcome of a shared run. */
struct AppShareResult
{
    std::string abbr;
    std::uint64_t references = 0;
    std::uint64_t faults = 0;
    /** Faults when running alone in the same total memory. */
    std::uint64_t soloFaults = 0;

    /** Fault inflation caused by sharing (>= ~1). */
    double
    slowdown() const
    {
        return soloFaults == 0 ? 1.0
                               : static_cast<double>(faults)
                                   / static_cast<double>(soloFaults);
    }
};

/** Outcome of one multi-app run. */
struct MultiAppResult
{
    std::vector<AppShareResult> apps;
    std::uint64_t totalFaults = 0;

    /**
     * Fairness of the sharing (min slowdown / max slowdown, 1 = perfectly
     * fair), the metric style MASK reports.
     */
    double
    fairness() const
    {
        double lo = 1e300, hi = 0;
        for (const AppShareResult &a : apps) {
            lo = std::min(lo, a.slowdown());
            hi = std::max(hi, a.slowdown());
        }
        return apps.empty() || hi == 0 ? 1.0 : lo / hi;
    }
};

/**
 * Co-run @p traces against one shared memory of @p frames pages under the
 * policy @p kind (constructed per run; MIN receives the interleaved
 * canonical trace, so it stays the offline upper bound).
 *
 * @param traces  the workloads; each gets a disjoint address-space slice.
 * @param kind    eviction policy for the shared memory.
 * @param frames  shared GPU memory capacity in pages.
 * @param hpeCfg  configuration when kind == Hpe.
 * @param jobs    parallelism for the per-app solo baselines (the shared
 *                run itself is inherently serial); results are identical
 *                for every value.  Default 1 = fully serial.
 */
MultiAppResult runShared(const std::vector<Trace> &traces, PolicyKind kind,
                         std::size_t frames, const HpeConfig &hpeCfg = {},
                         unsigned jobs = 1);

} // namespace hpe
