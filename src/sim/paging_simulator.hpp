/**
 * @file
 * Functional paging simulator.
 *
 * Consumes a workload's canonical page-reference trace in order, feeding
 * every reference to the memory manager (and thus the eviction policy).
 * There is no timing: this driver produces *exact* fault and eviction
 * counts, which is what the eviction-count figures (3, 11, 12b) compare,
 * and it is the mode in which Belady MIN is provably optimal.
 *
 * Fault batching (faultBatch > 1) models the GMMU fault-buffer drain: up
 * to a window of consecutive far-faults accumulate before being serviced
 * together.  The batch is flushed whenever ordering would otherwise be
 * observable — a hit, a re-reference of a pending page, a full window, or
 * the end of the trace — and each batched fault is serviced at its own
 * arrival reference index (the sink clock is advanced per fault).  With
 * the prefetcher off this makes a batched run *identical* to an unbatched
 * one — same counts, same victims, same trace digest — by construction:
 * only runs of consecutive distinct new faults ever batch, and those are
 * serviced in arrival order with arrival timestamps.
 *
 * A configured prefetcher runs after each serviced fault and fills only
 * free frames; prefetched pages enter the policy's coldest tier via
 * onPrefetchIn (see UvmMemoryManager::prefetchIn).
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/stats.hpp"
#include "driver/resilience.hpp"
#include "driver/state_validator.hpp"
#include "driver/uvm_manager.hpp"
#include "mem/page_size.hpp"
#include "policy/eviction_policy.hpp"
#include "prefetch/fault_batcher.hpp"
#include "prefetch/prefetcher.hpp"
#include "sim/probes.hpp"
#include "trace/interval_recorder.hpp"
#include "trace/trace_sink.hpp"
#include "workload/trace.hpp"

namespace hpe {

/** Counts from one functional run. */
struct PagingResult
{
    std::uint64_t references = 0;
    std::uint64_t hits = 0;
    std::uint64_t faults = 0;
    std::uint64_t evictions = 0;
    std::uint64_t dirtyEvictions = 0;
    std::uint64_t prefetches = 0;
    std::uint64_t prefetchUseful = 0;
    std::uint64_t prefetchWasted = 0;
    std::uint64_t prefetchLate = 0;

    double
    faultRate() const
    {
        return references == 0
                   ? 0.0
                   : static_cast<double>(faults) / static_cast<double>(references);
    }

    /** Fraction of prefetched pages later referenced before eviction. */
    double
    prefetchAccuracy() const
    {
        return prefetches == 0
                   ? 0.0
                   : static_cast<double>(prefetchUseful)
                         / static_cast<double>(prefetches);
    }
};

/** Optional attachments of a functional run (all off by default). */
struct PagingOptions
{
    /** Graceful degradation under thrashing. */
    DegradationConfig degradation{};
    /** Cross-check driver state after every fault service. */
    bool validate = false;
    /** Structured-event sink; timestamps are reference indices. */
    trace::TraceSink *sink = nullptr;
    /** Interval metrics timeline, ticked once per reference. */
    trace::IntervalRecorder *intervals = nullptr;
    /** Far-fault coalescing window (1 = service each fault immediately). */
    unsigned faultBatch = 1;
    /** Prefetcher selection (kind None = demand paging only). */
    prefetch::PrefetchConfig prefetch{};
    /** Page-size axis; default 4 KiB-only attaches nothing. */
    PageSizeConfig pageSizes{};
};

/**
 * Run @p trace against @p policy with @p frames pages of GPU memory.
 *
 * @param trace  the workload.
 * @param policy eviction policy under study.
 * @param frames GPU memory capacity in pages (oversubscription control).
 * @param stats  registry for the run's counters.
 * @param opts   optional resilience attachments.
 */
inline PagingResult
runPaging(const Trace &trace, EvictionPolicy &policy, std::size_t frames,
          StatRegistry &stats, const PagingOptions &opts = {})
{
    UvmMemoryManager uvm(frames, policy, stats, "uvm");
    if (opts.pageSizes.active())
        uvm.enablePageSizes(opts.pageSizes);
    if (opts.degradation.enabled)
        uvm.enableDegradation(opts.degradation);
    std::unique_ptr<StateValidator> validator;
    if (opts.validate) {
        validator = std::make_unique<StateValidator>(uvm, stats, "validator");
        uvm.setValidateHook([&validator] { validator->check(); });
    }
    if (opts.sink != nullptr) {
        uvm.setTraceSink(opts.sink);
        policy.setTraceSink(opts.sink);
    }
    if (opts.intervals != nullptr)
        attachIntervalProbes(*opts.intervals, stats, uvm, policy, "uvm");

    prefetch::FaultBatcher batcher(std::max(1u, opts.faultBatch));
    const std::unique_ptr<prefetch::Prefetcher> prefetcher =
        prefetch::makePrefetcher(opts.prefetch);
    std::vector<PageId> candidates;

    // Service one batched fault at its arrival reference index, then give
    // the prefetcher a shot at the free frames.  A pending page that a
    // prefetch landed early is a hit by the time its service runs.
    const auto service = [&](const prefetch::PendingFault &pf) {
        if (opts.sink != nullptr)
            opts.sink->advanceTo(pf.arrival);
        if (uvm.resident(pf.page)) {
            uvm.recordHit(pf.page);
        } else {
            uvm.handleFault(pf.page);
            if (prefetcher != nullptr) {
                candidates.clear();
                prefetcher->candidates(
                    pf.page, 0, [&uvm](PageId p) { return uvm.resident(p); },
                    candidates);
                for (const PageId q : candidates) {
                    if (!uvm.hasFreeFrame())
                        break;
                    if (batcher.contains(q)) {
                        uvm.notePrefetchLate();
                        continue;
                    }
                    uvm.prefetchIn(q);
                }
            }
        }
        if (pf.write)
            uvm.markDirty(pf.page);
    };
    const auto flush = [&] {
        for (const prefetch::PendingFault &pf : batcher.flush())
            service(pf);
    };

    PagingResult result;
    for (const PageRef &ref : trace.refs()) {
        // The sink clock is the reference index: every event emitted while
        // this reference is processed carries it.
        const std::uint64_t idx = result.references++;
        // Pending faults must land before this reference whenever it could
        // observe them: a re-reference of a pending page, or a hit (which
        // may update the policy and emit).  Residency is re-evaluated
        // *after* the flush — servicing the pending faults may evict the
        // very page this reference touches, turning the hit into a fault.
        if (batcher.contains(ref.page)
            || (!batcher.empty() && uvm.resident(ref.page))) [[unlikely]]
            flush();
        if (uvm.resident(ref.page)) [[likely]] {
            if (opts.sink != nullptr)
                opts.sink->advanceTo(idx);
            uvm.recordHit(ref.page);
            if (ref.write)
                uvm.markDirty(ref.page);
        } else if (batcher.push(ref.page, ref.write, idx)) {
            flush(); // window full
        }
        if (opts.intervals != nullptr)
            opts.intervals->onReference();
    }
    flush();
    if (opts.intervals != nullptr)
        opts.intervals->finish();
    result.hits = uvm.hits();
    result.faults = uvm.faults();
    result.evictions = uvm.evictions();
    result.dirtyEvictions = uvm.dirtyEvictions();
    result.prefetches = uvm.prefetches();
    result.prefetchUseful = uvm.prefetchUseful();
    result.prefetchWasted = uvm.prefetchWasted();
    result.prefetchLate = uvm.prefetchLate();
    return result;
}

} // namespace hpe
