/**
 * @file
 * Functional paging simulator.
 *
 * Consumes a workload's canonical page-reference trace in order, feeding
 * every reference to the memory manager (and thus the eviction policy).
 * There is no timing: this driver produces *exact* fault and eviction
 * counts, which is what the eviction-count figures (3, 11, 12b) compare,
 * and it is the mode in which Belady MIN is provably optimal.
 */

#pragma once

#include <cstdint>
#include <memory>

#include "common/stats.hpp"
#include "driver/resilience.hpp"
#include "driver/state_validator.hpp"
#include "driver/uvm_manager.hpp"
#include "policy/eviction_policy.hpp"
#include "sim/probes.hpp"
#include "trace/interval_recorder.hpp"
#include "trace/trace_sink.hpp"
#include "workload/trace.hpp"

namespace hpe {

/** Counts from one functional run. */
struct PagingResult
{
    std::uint64_t references = 0;
    std::uint64_t hits = 0;
    std::uint64_t faults = 0;
    std::uint64_t evictions = 0;
    std::uint64_t dirtyEvictions = 0;

    double
    faultRate() const
    {
        return references == 0
                   ? 0.0
                   : static_cast<double>(faults) / static_cast<double>(references);
    }
};

/** Optional attachments of a functional run (all off by default). */
struct PagingOptions
{
    /** Graceful degradation under thrashing. */
    DegradationConfig degradation{};
    /** Cross-check driver state after every fault service. */
    bool validate = false;
    /** Structured-event sink; timestamps are reference indices. */
    trace::TraceSink *sink = nullptr;
    /** Interval metrics timeline, ticked once per reference. */
    trace::IntervalRecorder *intervals = nullptr;
};

/**
 * Run @p trace against @p policy with @p frames pages of GPU memory.
 *
 * @param trace  the workload.
 * @param policy eviction policy under study.
 * @param frames GPU memory capacity in pages (oversubscription control).
 * @param stats  registry for the run's counters.
 * @param opts   optional resilience attachments.
 */
inline PagingResult
runPaging(const Trace &trace, EvictionPolicy &policy, std::size_t frames,
          StatRegistry &stats, const PagingOptions &opts = {})
{
    UvmMemoryManager uvm(frames, policy, stats, "uvm");
    if (opts.degradation.enabled)
        uvm.enableDegradation(opts.degradation);
    std::unique_ptr<StateValidator> validator;
    if (opts.validate) {
        validator = std::make_unique<StateValidator>(uvm, stats, "validator");
        uvm.setValidateHook([&validator] { validator->check(); });
    }
    if (opts.sink != nullptr) {
        uvm.setTraceSink(opts.sink);
        policy.setTraceSink(opts.sink);
    }
    if (opts.intervals != nullptr)
        attachIntervalProbes(*opts.intervals, stats, uvm, policy, "uvm");
    PagingResult result;
    for (const PageRef &ref : trace.refs()) {
        // The sink clock is the reference index: every event emitted while
        // this reference is processed carries it.
        if (opts.sink != nullptr)
            opts.sink->advanceTo(result.references);
        ++result.references;
        if (uvm.resident(ref.page))
            uvm.recordHit(ref.page);
        else
            uvm.handleFault(ref.page);
        if (ref.write)
            uvm.markDirty(ref.page);
        if (opts.intervals != nullptr)
            opts.intervals->onReference();
    }
    if (opts.intervals != nullptr)
        opts.intervals->finish();
    result.hits = uvm.hits();
    result.faults = uvm.faults();
    result.evictions = uvm.evictions();
    result.dirtyEvictions = uvm.dirtyEvictions();
    return result;
}

} // namespace hpe
