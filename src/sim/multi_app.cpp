#include "sim/multi_app.hpp"

#include "common/log.hpp"
#include "driver/uvm_manager.hpp"
#include "sim/paging_simulator.hpp"
#include "sim/policy_factory.hpp"
#include "sim/sweep.hpp"

namespace hpe {

namespace {

/** High-bit address-space slice per application. */
constexpr unsigned kSliceShift = 40;

PageId
slicedPage(std::size_t app, PageId page)
{
    return (static_cast<PageId>(app) << kSliceShift) | page;
}

std::size_t
appOf(PageId page)
{
    return static_cast<std::size_t>(page >> kSliceShift);
}

/**
 * Weighted round-robin merge: at every step the app with the least
 * fractional progress issues its next visit, so all traces finish
 * together regardless of length.
 */
Trace
mergeTraces(const std::vector<Trace> &traces)
{
    Trace merged("MIX", "multi-app mix", "shared", traces.front().pattern());
    std::vector<std::size_t> cursor(traces.size(), 0);
    for (;;) {
        std::size_t best = traces.size();
        double best_progress = 2.0;
        for (std::size_t a = 0; a < traces.size(); ++a) {
            if (cursor[a] >= traces[a].size())
                continue;
            const double progress = static_cast<double>(cursor[a])
                / static_cast<double>(traces[a].size());
            if (progress < best_progress) {
                best_progress = progress;
                best = a;
            }
        }
        if (best == traces.size())
            break;
        const PageRef &ref = traces[best].refs()[cursor[best]++];
        merged.add(slicedPage(best, ref.page), ref.burst, ref.write);
    }
    return merged;
}

} // namespace

MultiAppResult
runShared(const std::vector<Trace> &traces, PolicyKind kind,
          std::size_t frames, const HpeConfig &hpeCfg, unsigned jobs)
{
    HPE_ASSERT(!traces.empty(), "runShared needs at least one trace");
    HPE_ASSERT(traces.size() < (std::size_t{1} << 8), "too many apps");

    const Trace merged = mergeTraces(traces);

    MultiAppResult result;
    result.apps.resize(traces.size());
    for (std::size_t a = 0; a < traces.size(); ++a)
        result.apps[a].abbr = traces[a].abbr();

    // Shared run with per-app fault attribution.
    {
        StatRegistry stats;
        auto policy = makePolicy(kind, merged, stats, hpeCfg);
        UvmMemoryManager uvm(frames, *policy, stats, "uvm");
        for (const PageRef &ref : merged.refs()) {
            AppShareResult &app = result.apps[appOf(ref.page)];
            ++app.references;
            if (uvm.resident(ref.page)) {
                uvm.recordHit(ref.page);
            } else {
                uvm.handleFault(ref.page);
                ++app.faults;
            }
        }
        result.totalFaults = uvm.faults();
    }

    // Solo baselines: each app alone in the same total memory.  These are
    // independent simulations, so they fan out; collection by app index
    // keeps the result identical for every jobs value.
    SweepRunner runner(jobs);
    const auto solo = runner.map(traces.size(), [&](std::size_t a) {
        StatRegistry stats;
        auto policy = makePolicy(kind, traces[a], stats, hpeCfg);
        return runPaging(traces[a], *policy, frames, stats).faults;
    });
    for (std::size_t a = 0; a < traces.size(); ++a)
        result.apps[a].soloFaults = solo[a];
    return result;
}

} // namespace hpe
