/**
 * @file
 * Factory producing the policies the paper evaluates, configured per
 * workload the way §V-B describes (RRIP's per-pattern insertion/threshold,
 * MIN's future trace, HPE's full configuration).
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "core/hpe_config.hpp"
#include "policy/eviction_policy.hpp"
#include "workload/trace.hpp"

namespace hpe {

/**
 * The policies of §V, plus extra baselines from the paper's related
 * work discussion (plain CLOCK, LFU, FIFO, and a DIP adaptation, §VI).
 */
enum class PolicyKind {
    Lru,
    Random,
    Rrip,
    ClockPro,
    Ideal,
    Hpe,
    Clock,
    Lfu,
    Fifo,
    Dip,
    MetaDuel,   ///< adaptive meta-policy, set-dueling selector
    MetaBandit, ///< adaptive meta-policy, epsilon-greedy/UCB selector
};

/** Printable policy-kind name. */
const char *policyKindName(PolicyKind kind);

/** The six kinds the paper evaluates, in its comparison order. */
const std::vector<PolicyKind> &allPolicyKinds();

/** Every kind including the extra related-work baselines. */
const std::vector<PolicyKind> &extendedPolicyKinds();

/**
 * Build a policy instance for @p trace.
 *
 * @param kind   which policy.
 * @param trace  the workload (RRIP reads its declared pattern type; MIN
 *               takes its canonical future trace).
 * @param stats  registry the policy's stats land in.
 * @param hpeCfg configuration used when kind == Hpe.
 * @param seed   RNG seed for the Random policy.
 */
std::unique_ptr<EvictionPolicy>
makePolicy(PolicyKind kind, const Trace &trace, StatRegistry &stats,
           const HpeConfig &hpeCfg = {}, std::uint64_t seed = 1);

} // namespace hpe
