#include "sim/experiment.hpp"

#include <cmath>

#include "common/log.hpp"

namespace hpe {

std::size_t
framesFor(const Trace &trace, double oversub)
{
    HPE_ASSERT(oversub > 0.0 && oversub <= 1.0, "bad oversubscription rate {}", oversub);
    const auto fp = static_cast<double>(trace.footprintPages());
    const auto frames = static_cast<std::size_t>(std::ceil(fp * oversub));
    return frames > 0 ? frames : 1;
}

InspectableRun
runFunctionalInspect(const Trace &trace, PolicyKind kind, const RunConfig &cfg,
                     const TraceAttachments &attach)
{
    InspectableRun run;
    run.stats = std::make_unique<StatRegistry>();
    run.policy = makePolicy(kind, trace, *run.stats, cfg.hpe, cfg.seed);
    // The GpuConfig carries the resilience knobs for both modes; the
    // functional path honours the ones that exist without timing.
    PagingOptions opts{.degradation = cfg.gpu.degradation,
                       .validate = cfg.gpu.validate,
                       .sink = attach.sink,
                       .intervals = attach.intervals,
                       .faultBatch = cfg.gpu.driver.batchSize,
                       .prefetch = cfg.gpu.driver.prefetch,
                       .pageSizes = cfg.gpu.pageSizes};
    // The legacy --prefetch N knob maps onto the sequential prefetcher,
    // mirroring the timing driver's back-compat rule.
    if (opts.prefetch.kind == prefetch::PrefetchKind::None
        && cfg.gpu.driver.prefetchDegree > 0) {
        opts.prefetch.kind = prefetch::PrefetchKind::Sequential;
        opts.prefetch.degree = cfg.gpu.driver.prefetchDegree;
        opts.prefetch.blockPages = cfg.gpu.driver.prefetchBlockPages;
    }
    run.paging = runPaging(trace, *run.policy, framesFor(trace, cfg.oversub),
                           *run.stats, opts);
    return run;
}

InspectableRun
runTimingInspect(const Trace &trace, PolicyKind kind, const RunConfig &cfg,
                 const TraceAttachments &attach)
{
    InspectableRun run;
    run.stats = std::make_unique<StatRegistry>();
    run.policy = makePolicy(kind, trace, *run.stats, cfg.hpe, cfg.seed);
    GpuSystem gpu(cfg.gpu, trace, *run.policy, framesFor(trace, cfg.oversub),
                  *run.stats, run.hpe());
    if (attach.sink != nullptr)
        gpu.setTraceSink(attach.sink);
    if (attach.intervals != nullptr) {
        attachIntervalProbes(*attach.intervals, *run.stats, gpu.uvm(),
                             *run.policy, "driver.uvm");
        gpu.setIntervalRecorder(attach.intervals);
    }
    run.timing = gpu.run();
    return run;
}

PagingResult
runFunctional(const Trace &trace, PolicyKind kind, const RunConfig &cfg)
{
    return runFunctionalInspect(trace, kind, cfg).paging;
}

TimingResult
runTiming(const Trace &trace, PolicyKind kind, const RunConfig &cfg)
{
    return runTimingInspect(trace, kind, cfg).timing;
}

} // namespace hpe
