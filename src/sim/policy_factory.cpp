#include "sim/policy_factory.hpp"

#include "common/log.hpp"
#include "core/hpe_policy.hpp"
#include "policy/clock.hpp"
#include "policy/clock_pro.hpp"
#include "policy/dip.hpp"
#include "policy/fifo.hpp"
#include "policy/lfu.hpp"
#include "policy/lru.hpp"
#include "policy/meta/meta_policy.hpp"
#include "policy/min.hpp"
#include "policy/random.hpp"
#include "policy/rrip.hpp"

namespace hpe {

namespace {

/** The candidate roster every meta-policy hosts (ISSUE 8 / ROADMAP 4). */
const std::vector<PolicyKind> kMetaCandidates = {
    PolicyKind::Lru,
    PolicyKind::ClockPro,
    PolicyKind::Hpe,
    PolicyKind::Rrip,
};

/**
 * Assemble a MetaPolicy: one live + one shadow instance per candidate,
 * each with a private StatRegistry so HPE's counters never collide with
 * the run's registry (or with each other).
 */
std::unique_ptr<EvictionPolicy>
makeMetaPolicy(meta::SelectorKind selector, const Trace &trace,
               const HpeConfig &hpeCfg, std::uint64_t seed)
{
    std::vector<meta::MetaCandidate> candidates;
    candidates.reserve(kMetaCandidates.size());
    for (PolicyKind kind : kMetaCandidates) {
        meta::MetaCandidate c;
        c.name = policyKindName(kind);
        c.liveStats = std::make_unique<StatRegistry>();
        c.live = makePolicy(kind, trace, *c.liveStats, hpeCfg, seed);
        if (selector == meta::SelectorKind::Duel) {
            c.shadowStats = std::make_unique<StatRegistry>();
            c.shadow = makePolicy(kind, trace, *c.shadowStats, hpeCfg, seed);
        }
        candidates.push_back(std::move(c));
    }
    meta::MetaConfig cfg;
    cfg.selector = selector;
    cfg.seed = seed;
    cfg.setShift = 4; // match HpeConfig's default 16-page sets
    return std::make_unique<meta::MetaPolicy>(cfg, std::move(candidates));
}

} // namespace

const char *
policyKindName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Lru:
        return "LRU";
      case PolicyKind::Random:
        return "Random";
      case PolicyKind::Rrip:
        return "RRIP";
      case PolicyKind::ClockPro:
        return "CLOCK-Pro";
      case PolicyKind::Ideal:
        return "Ideal";
      case PolicyKind::Hpe:
        return "HPE";
      case PolicyKind::Clock:
        return "CLOCK";
      case PolicyKind::Lfu:
        return "LFU";
      case PolicyKind::Fifo:
        return "FIFO";
      case PolicyKind::Dip:
        return "DIP";
      case PolicyKind::MetaDuel:
        return "Meta-duel";
      case PolicyKind::MetaBandit:
        return "Meta-bandit";
    }
    return "?";
}

const std::vector<PolicyKind> &
allPolicyKinds()
{
    static const std::vector<PolicyKind> kinds = {
        PolicyKind::Lru,  PolicyKind::Random, PolicyKind::Rrip,
        PolicyKind::ClockPro, PolicyKind::Ideal, PolicyKind::Hpe,
    };
    return kinds;
}

const std::vector<PolicyKind> &
extendedPolicyKinds()
{
    static const std::vector<PolicyKind> kinds = {
        PolicyKind::Lru,      PolicyKind::Random,   PolicyKind::Rrip,
        PolicyKind::ClockPro, PolicyKind::Clock,    PolicyKind::Lfu,
        PolicyKind::Fifo,     PolicyKind::Dip,      PolicyKind::MetaDuel,
        PolicyKind::MetaBandit, PolicyKind::Ideal,  PolicyKind::Hpe,
    };
    return kinds;
}

std::unique_ptr<EvictionPolicy>
makePolicy(PolicyKind kind, const Trace &trace, StatRegistry &stats,
           const HpeConfig &hpeCfg, std::uint64_t seed)
{
    switch (kind) {
      case PolicyKind::Lru:
        return std::make_unique<LruPolicy>();
      case PolicyKind::Random:
        return std::make_unique<RandomPolicy>(seed);
      case PolicyKind::Rrip: {
        // §V-B: declared type-II workloads insert distant with a 128-fault
        // delay threshold; everything else inserts long with threshold 0.
        RripConfig cfg = trace.pattern() == PatternType::II
                             ? RripConfig::thrashing()
                             : RripConfig{};
        return std::make_unique<RripPolicy>(cfg);
      }
      case PolicyKind::ClockPro:
        return std::make_unique<ClockProPolicy>();
      case PolicyKind::Ideal:
        return std::make_unique<MinPolicy>(trace.canonicalPages());
      case PolicyKind::Hpe:
        return std::make_unique<HpePolicy>(hpeCfg, stats);
      case PolicyKind::Clock:
        return std::make_unique<ClockPolicy>();
      case PolicyKind::Lfu:
        return std::make_unique<LfuPolicy>();
      case PolicyKind::Fifo:
        return std::make_unique<FifoPolicy>();
      case PolicyKind::Dip:
        return std::make_unique<DipPolicy>(DipConfig{.seed = seed});
      case PolicyKind::MetaDuel:
        return makeMetaPolicy(meta::SelectorKind::Duel, trace, hpeCfg, seed);
      case PolicyKind::MetaBandit:
        return makeMetaPolicy(meta::SelectorKind::Bandit, trace, hpeCfg,
                              seed);
    }
    panic("bad policy kind");
}

} // namespace hpe
