#include "sim/sweep.hpp"

#include <cstdlib>

#include "common/log.hpp"

namespace hpe {

unsigned
resolveJobs(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("HPE_JOBS"); env != nullptr && *env != '\0') {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end == env || *end != '\0')
            fatal("HPE_JOBS must be a non-negative integer, got '{}'", env);
        if (v > 0)
            return static_cast<unsigned>(v);
        // HPE_JOBS=0 means "auto", same as unset.
    }
    return ThreadPool::hardwareThreads();
}

std::vector<SweepOutcome>
SweepRunner::run(const std::vector<SweepJob> &jobs)
{
    return map(jobs.size(), [&](std::size_t i) {
        const SweepJob &job = jobs[i];
        HPE_ASSERT(job.trace != nullptr, "sweep job {} has no trace", i);
        SweepOutcome out;
        if (job.functional)
            out.paging = runFunctional(*job.trace, job.kind, job.cfg);
        else
            out.timing = runTiming(*job.trace, job.kind, job.cfg);
        return out;
    });
}

} // namespace hpe
