#include "sim/sweep.hpp"

#include <cstdlib>

#include "common/log.hpp"

namespace hpe {

unsigned
resolveJobs(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("HPE_JOBS"); env != nullptr && *env != '\0') {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end == env || *end != '\0')
            fatal("HPE_JOBS must be a non-negative integer, got '{}'", env);
        if (v > 0)
            return static_cast<unsigned>(v);
        // HPE_JOBS=0 means "auto", same as unset.
    }
    return ThreadPool::hardwareThreads();
}

std::vector<SweepOutcome>
SweepRunner::run(const std::vector<SweepJob> &jobs)
{
    return map(jobs.size(), [&](std::size_t i) {
        const SweepJob &job = jobs[i];
        HPE_ASSERT(job.trace != nullptr, "sweep job {} has no trace", i);
        SweepOutcome out;
        // Each traced job owns its sink; callers reduce the digests in
        // job-index order (combineDigests) so the combined value is the
        // same for every --jobs setting.
        std::unique_ptr<trace::TraceSink> sink;
        TraceAttachments attach;
        if (job.trace_cfg.enabled) {
            sink = std::make_unique<trace::TraceSink>(trace::TraceSink::Config{
                .ringCapacity = job.trace_cfg.ringCapacity,
                .mask = job.trace_cfg.mask});
            attach.sink = sink.get();
        }
        if (job.functional)
            out.paging = runFunctionalInspect(*job.trace, job.kind, job.cfg,
                                              attach)
                             .paging;
        else
            out.timing = runTimingInspect(*job.trace, job.kind, job.cfg,
                                          attach)
                             .timing;
        if (sink != nullptr) {
            out.traceDigest = sink->digest();
            out.traceEvents = sink->emitted();
        }
        return out;
    });
}

} // namespace hpe
