#include "sim/tournament.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "api/api.hpp"
#include "common/log.hpp"
#include "sim/sweep.hpp"
#include "workload/apps.hpp"

namespace hpe {

namespace json = api::json;

namespace {

/** Is @p policy one of the adaptive meta selectors? */
bool
isMetaPolicy(const std::string &policy)
{
    return policy.rfind("Meta-", 0) == 0;
}

/** Round half-away-from-zero to 6 decimals so the canonical JSON bytes
 *  do not depend on accumulated floating-point noise. */
double
round6(double v)
{
    return std::round(v * 1e6) / 1e6;
}

/** Stable key of one (app, oversub, prefetch) cell group. */
std::string
groupKey(const TournamentCell &c)
{
    std::ostringstream os;
    os << c.app << "/" << c.prefetch << "@" << c.oversub;
    return os.str();
}

} // namespace

TournamentConfig
TournamentConfig::quick()
{
    TournamentConfig cfg;
    cfg.apps = {"HSD", "BFS", "KMN", "MXT", "MXS", "MXR"};
    cfg.policies = {"LRU",       "CLOCK-Pro",  "HPE",
                    "RRIP",      "Meta-duel",  "Meta-bandit"};
    cfg.prefetchers = {"none", "sequential", "stride", "density"};
    cfg.oversubs = {0.5, 0.75};
    cfg.scale = 0.1;
    cfg.seed = 1;
    return cfg;
}

TournamentConfig
TournamentConfig::full()
{
    TournamentConfig cfg = quick();
    cfg.apps.clear();
    for (const AppSpec &spec : appSpecs())
        cfg.apps.push_back(spec.abbr);
    for (const AppSpec &spec : extraAppSpecs())
        cfg.apps.push_back(spec.abbr);
    for (const AppSpec &spec : mixSpecs())
        cfg.apps.push_back(spec.abbr);
    return cfg;
}

std::size_t
TournamentConfig::cellCount() const
{
    return apps.size() * policies.size() * prefetchers.size()
           * oversubs.size();
}

Leaderboard
runTournament(const TournamentConfig &cfg)
{
    if (cfg.apps.empty() || cfg.policies.empty() || cfg.prefetchers.empty()
        || cfg.oversubs.empty())
        fatal("tournament needs at least one app, policy, prefetcher and "
              "oversubscription point");
    if (std::find(cfg.policies.begin(), cfg.policies.end(), "LRU")
        == cfg.policies.end())
        fatal("tournament needs the LRU baseline in its policy list");

    // Build each workload once; cells share the trace read-only.
    std::vector<Trace> traces;
    traces.reserve(cfg.apps.size());
    for (const std::string &app : cfg.apps)
        traces.push_back(buildApp(app, cfg.scale, cfg.seed));

    // Canonical cell order: app (outer), oversub, prefetch, policy
    // (inner) — policies of one group stay adjacent so group reductions
    // are simple index arithmetic.
    struct CellPlan
    {
        std::size_t appIdx;
        double oversub;
        std::string prefetch;
        std::string policy;
    };
    std::vector<CellPlan> plan;
    plan.reserve(cfg.cellCount());
    for (std::size_t a = 0; a < cfg.apps.size(); ++a)
        for (double oversub : cfg.oversubs)
            for (const std::string &prefetch : cfg.prefetchers)
                for (const std::string &policy : cfg.policies)
                    plan.push_back({a, oversub, prefetch, policy});

    SweepRunner runner(cfg.jobs);
    Leaderboard board;
    board.cfg = cfg;
    board.cells = runner.mapItems(plan, [&](const CellPlan &p) {
        api::ExperimentRequest req;
        req.app = cfg.apps[p.appIdx];
        req.scale = cfg.scale;
        req.seed = cfg.seed;
        req.policy = p.policy;
        req.oversub = p.oversub;
        req.functional = true;
        req.prefetch = p.prefetch;
        req.traceDigest = true;
        req.normalize();
        const api::ExperimentResult r =
            api::runExperiment(req, &traces[p.appIdx]);
        TournamentCell cell;
        cell.app = req.app;
        cell.oversub = p.oversub;
        cell.prefetch = req.prefetch;
        cell.policy = req.policy;
        cell.references = r.references;
        cell.faults = r.faults;
        cell.evictions = r.evictions;
        cell.hits = r.hits;
        cell.faultRate = round6(r.faultRate);
        cell.digest = r.traceDigest;
        cell.fingerprint = req.fingerprint();
        return cell;
    });

    // --- Reductions (serial, in canonical cell order) -------------------
    const std::size_t nPolicies = cfg.policies.size();
    const std::size_t nGroups = board.cells.size() / nPolicies;

    // Per-policy index within cfg.policies (cells preserve that order).
    auto cellAt = [&](std::size_t group, std::size_t policy)
        -> const TournamentCell & {
        return board.cells[group * nPolicies + policy];
    };
    std::size_t lruIdx = 0;
    while (cfg.policies[lruIdx] != "LRU")
        ++lruIdx;

    board.winMatrix.assign(nPolicies, std::vector<unsigned>(nPolicies, 0));
    std::vector<double> logSpeedupSum(nPolicies, 0.0);
    std::vector<std::uint64_t> totalFaults(nPolicies, 0);
    std::vector<unsigned> outrightWins(nPolicies, 0);

    for (std::size_t g = 0; g < nGroups; ++g) {
        const std::uint64_t lruFaults =
            std::max<std::uint64_t>(cellAt(g, lruIdx).faults, 1);
        std::uint64_t bestStatic = UINT64_MAX;
        for (std::size_t i = 0; i < nPolicies; ++i) {
            const std::uint64_t f = cellAt(g, i).faults;
            totalFaults[i] += f;
            logSpeedupSum[i] += std::log(
                static_cast<double>(lruFaults)
                / static_cast<double>(std::max<std::uint64_t>(f, 1)));
            if (!isMetaPolicy(cfg.policies[i]))
                bestStatic = std::min(bestStatic, f);
            bool outright = true;
            for (std::size_t j = 0; j < nPolicies; ++j) {
                if (i == j)
                    continue;
                if (f < cellAt(g, j).faults)
                    ++board.winMatrix[i][j];
                else
                    outright = false;
            }
            if (outright)
                ++outrightWins[i];
        }
        for (std::size_t i = 0; i < nPolicies; ++i)
            if (isMetaPolicy(cfg.policies[i])
                && cellAt(g, i).faults < bestStatic)
                board.metaBeatsAllStatics.push_back(
                    groupKey(cellAt(g, i)) + ":" + cfg.policies[i]);
    }

    board.rows.reserve(nPolicies);
    for (std::size_t i = 0; i < nPolicies; ++i) {
        TournamentRow row;
        row.policy = cfg.policies[i];
        row.totalFaults = totalFaults[i];
        row.geomeanSpeedupVsLru = round6(
            std::exp(logSpeedupSum[i] / static_cast<double>(nGroups)));
        row.outrightWins = outrightWins[i];
        board.rows.push_back(row);
    }
    std::stable_sort(board.rows.begin(), board.rows.end(),
                     [](const TournamentRow &a, const TournamentRow &b) {
                         return a.geomeanSpeedupVsLru > b.geomeanSpeedupVsLru;
                     });
    return board;
}

api::json::Value
Leaderboard::toJson() const
{
    json::Object root;
    root["tool_version"] = kTournamentToolVersion;

    json::Object config;
    json::Array apps, policies, prefetchers, oversubs;
    for (const std::string &a : cfg.apps)
        apps.emplace_back(a);
    for (const std::string &p : cfg.policies)
        policies.emplace_back(p);
    for (const std::string &p : cfg.prefetchers)
        prefetchers.emplace_back(p);
    for (double o : cfg.oversubs)
        oversubs.emplace_back(o);
    config["apps"] = std::move(apps);
    config["policies"] = std::move(policies);
    config["prefetchers"] = std::move(prefetchers);
    config["oversubs"] = std::move(oversubs);
    config["scale"] = cfg.scale;
    config["seed"] = cfg.seed;
    root["config"] = std::move(config);

    json::Array cellArr;
    for (const TournamentCell &c : cells) {
        json::Object o;
        o["app"] = c.app;
        o["oversub"] = c.oversub;
        o["prefetch"] = c.prefetch;
        o["policy"] = c.policy;
        o["references"] = c.references;
        o["faults"] = c.faults;
        o["evictions"] = c.evictions;
        o["hits"] = c.hits;
        o["fault_rate"] = c.faultRate;
        o["digest"] = c.digest;
        o["fingerprint"] = c.fingerprint;
        cellArr.emplace_back(std::move(o));
    }
    root["cells"] = std::move(cellArr);

    json::Array rowArr;
    for (const TournamentRow &r : rows) {
        json::Object o;
        o["policy"] = r.policy;
        o["total_faults"] = r.totalFaults;
        o["geomean_speedup_vs_lru"] = r.geomeanSpeedupVsLru;
        o["outright_wins"] = r.outrightWins;
        rowArr.emplace_back(std::move(o));
    }
    root["leaderboard"] = std::move(rowArr);

    json::Array matrix;
    for (const std::vector<unsigned> &rowWins : winMatrix) {
        json::Array row;
        for (unsigned w : rowWins)
            row.emplace_back(w);
        matrix.emplace_back(std::move(row));
    }
    root["win_matrix"] = std::move(matrix);

    json::Array metaWins;
    for (const std::string &key : metaBeatsAllStatics)
        metaWins.emplace_back(key);
    root["meta_beats_all_statics"] = std::move(metaWins);

    return json::Value(std::move(root));
}

std::string
Leaderboard::toMarkdown() const
{
    std::ostringstream os;
    os << "# Policy tournament leaderboard\n\n";
    os << "Cells: " << cells.size() << " (" << cfg.apps.size() << " apps x "
       << cfg.oversubs.size() << " oversubscriptions x "
       << cfg.prefetchers.size() << " prefetchers x " << cfg.policies.size()
       << " policies), scale " << cfg.scale << ", seed " << cfg.seed
       << ".\n\n";

    os << "## Standings\n\n";
    os << "| rank | policy | geomean speedup vs LRU | total far faults | "
          "outright wins |\n";
    os << "|---:|---|---:|---:|---:|\n";
    for (std::size_t i = 0; i < rows.size(); ++i)
        os << "| " << i + 1 << " | " << rows[i].policy << " | "
           << rows[i].geomeanSpeedupVsLru << " | " << rows[i].totalFaults
           << " | " << rows[i].outrightWins << " |\n";

    os << "\n## Win matrix\n\n";
    os << "Entry (row, column): cells where the row policy had strictly "
          "fewer far faults than the column policy.\n\n";
    os << "| vs |";
    for (const std::string &p : cfg.policies)
        os << " " << p << " |";
    os << "\n|---|";
    for (std::size_t i = 0; i < cfg.policies.size(); ++i)
        os << "---:|";
    os << "\n";
    for (std::size_t i = 0; i < cfg.policies.size(); ++i) {
        os << "| " << cfg.policies[i] << " |";
        for (std::size_t j = 0; j < cfg.policies.size(); ++j) {
            if (i == j)
                os << " - |";
            else
                os << " " << winMatrix[i][j] << " |";
        }
        os << "\n";
    }

    os << "\n## Adaptive wins\n\n";
    if (metaBeatsAllStatics.empty()) {
        os << "No cell where a meta-policy strictly beat every static "
              "policy.\n";
    } else {
        os << "Cells where a meta-policy strictly beat every static "
              "policy:\n\n";
        for (const std::string &key : metaBeatsAllStatics)
            os << "- " << key << "\n";
    }
    return os.str();
}

} // namespace hpe
