/**
 * @file
 * Timing model of the host-side GPU driver that services page faults.
 *
 * GPUs cannot run OS fault handlers in the shader pipeline, so faults are
 * forwarded to a software runtime on the host CPU (§II).  This model:
 *
 *  - queues faults and services them one at a time with the paper's fixed
 *    20 us handling latency (Table I);
 *  - merges concurrent faults on the same page into one service;
 *  - performs eviction + migration through the UvmMemoryManager at service
 *    completion time;
 *  - charges HPE's periodic HIR transfers to the PCIe link and extends the
 *    triggering fault's completion accordingly (§V-B);
 *  - wakes every waiting warp when the page becomes resident (the
 *    replayable far-fault mechanism re-runs their translations).
 *
 * Under chaos mode (setInjector) a fault service can time out or its
 * migration transfer can fail before the page is made resident.  Both are
 * replayed through the same completion event after a bounded exponential
 * backoff (DriverConfig::retry); when the attempt budget is exhausted the
 * driver escalates to the reliable slow path and services the fault
 * unconditionally, so a fault can be delayed but never lost.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/event_queue.hpp"
#include "common/fault_injector.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "core/hpe_policy.hpp"
#include "driver/pcie.hpp"
#include "driver/resilience.hpp"
#include "driver/uvm_manager.hpp"

namespace hpe {

/** Driver timing parameters. */
struct DriverConfig
{
    /** Fixed page-fault service latency (paper: 20 us). */
    Cycle faultServiceCycles = microsToCycles(20.0);
    /**
     * Minimum gap between consecutive fault-service *starts*.  Real UVM
     * runtimes pipeline fault handling (the 20 us latency spans several
     * PCIe round trips the host core is not busy for), so throughput is
     * higher than 1/latency; this models that pipelining while keeping
     * per-fault latency fixed.
     */
    Cycle serviceInitiationCycles = microsToCycles(5.0);

    /**
     * Sequential prefetch: on each serviced fault, migrate up to this
     * many following non-resident pages of the same aligned 16-page block
     * in as well (the NVIDIA driver's basic-block prefetch heuristic).
     * Prefetching only fills *free* frames — it never evicts.  0 = off
     * (the paper's configuration).
     */
    unsigned prefetchDegree = 0;

    /** Aligned block size the prefetcher stays within (pages). */
    unsigned prefetchBlockPages = 16;

    /**
     * Accumulate up to this many faults before initiating service — real
     * UVM drivers drain the GPU's fault buffer in batches per interrupt.
     * 1 = service immediately (the paper's fixed-latency model).
     */
    unsigned batchSize = 1;

    /** Flush a partial batch after this long. */
    Cycle batchTimeoutCycles = microsToCycles(5.0);

    /** Backoff schedule for timed-out / failed fault services (chaos). */
    RetryPolicy retry{};
};

/** Serialized fault-service engine on the host CPU. */
class GpuDriver
{
  public:
    using Wakeup = std::function<void()>;

    /**
     * @param cfg   timing parameters.
     * @param uvm   the functional memory manager (page table, policy).
     * @param pcie  the CPU-GPU link (HIR transfer accounting).
     * @param eq    event queue of the timing simulation.
     * @param stats registry receiving "<name>.*".
     * @param name  stat prefix, e.g. "driver".
     * @param hpe   when the policy under study is HPE, its handle so the
     *              driver can charge pending HIR transfer bytes; else null.
     */
    GpuDriver(const DriverConfig &cfg, UvmMemoryManager &uvm, PcieLink &pcie,
              EventQueue &eq, StatRegistry &stats, const std::string &name,
              HpePolicy *hpe = nullptr)
        : cfg_(cfg), uvm_(uvm), pcie_(pcie), eq_(eq), hpe_(hpe),
          stats_(stats), name_(name),
          serviced_(stats.counter(name + ".faultsServiced")),
          merged_(stats.counter(name + ".faultsMerged")),
          prefetched_(stats.counter(name + ".pagesPrefetched")),
          queueDepth_(stats.distribution(name + ".queueDepth"))
    {}

    /**
     * Attach a chaos injector: fault services may now time out or have
     * their migration transfer fail, entering the retry path.  The retry
     * counters are registered lazily here so an uninjected driver's stat
     * tree is unchanged.
     */
    void
    setInjector(FaultInjector *injector)
    {
        injector_ = injector;
        if (injector_ != nullptr && serviceReplays_ == nullptr) {
            serviceReplays_ = &stats_.counter(name_ + ".serviceReplays");
            migrationRetries_ = &stats_.counter(name_ + ".migrationRetries");
            retriesExhausted_ = &stats_.counter(name_ + ".retriesExhausted");
        }
    }

    /**
     * Attach a structured-event sink (nullable).  The driver owns the
     * timing run's clock hand-off: it advances the sink to the event
     * queue's current cycle before every fault service, so the clock-less
     * emitters underneath (UvmMemoryManager, the policy) stamp correctly.
     */
    void setTraceSink(trace::TraceSink *sink) { sink_ = sink; }

    /**
     * A translation for @p page faulted; @p wakeup fires once the page is
     * resident.  Faults on a page already being serviced merge.
     *
     * @return true if this request initiated the fault service; false if
     *         it merged into one already in flight (the caller's visit is
     *         then an ordinary reference once the page arrives).
     */
    bool
    requestPage(PageId page, Wakeup wakeup)
    {
        auto it = waiters_.find(page);
        if (it != waiters_.end()) {
            ++merged_;
            it->second.push_back(std::move(wakeup));
            return false;
        }
        waiters_[page].push_back(std::move(wakeup));
        queue_.push_back(page);
        queueDepth_.sample(static_cast<double>(queue_.size()));
        maybeLaunch();
        return true;
    }

    /** Total cycles the host core spent servicing faults (§V-C load). */
    Cycle busyCycles() const { return busyCycles_; }

    /** Faults currently queued or in service. */
    std::size_t pending() const { return waiters_.size(); }

  private:
    /** Apply the batching discipline: launch now or arm the flush timer. */
    void
    maybeLaunch()
    {
        if (cfg_.batchSize <= 1 || queue_.size() >= cfg_.batchSize) {
            launchAll();
            return;
        }
        if (!flushTimerArmed_) {
            flushTimerArmed_ = true;
            eq_.scheduleIn(cfg_.batchTimeoutCycles, [this] {
                flushTimerArmed_ = false;
                launchAll();
            });
        }
    }

    /** Launch queued faults, staggered by the initiation interval. */
    void
    launchAll()
    {
        while (!queue_.empty()) {
            const Cycle start = std::max(eq_.now(), nextStart_);
            nextStart_ = start + cfg_.serviceInitiationCycles;
            const PageId page = queue_.front();
            queue_.pop_front();
            // Host-core occupancy: the initiation slice per fault.
            busyCycles_ += cfg_.serviceInitiationCycles;
            eq_.schedule(start + cfg_.faultServiceCycles,
                         [this, page] { complete(page); });
        }
    }

    /**
     * Chaos gate in front of the functional fault service.  Runs before
     * handleFault so a replayed fault finds the page still non-resident.
     * @return true to proceed with the service; false when a retry of
     *         complete() was scheduled instead.
     */
    bool
    admitService(PageId page)
    {
        const bool timed_out = injector_->serviceTimesOut();
        const bool xfer_failed = !timed_out && injector_->pcieTransferFails();
        if (!timed_out && !xfer_failed)
            return true;
        const unsigned attempt = ++attempts_[page];
        if (attempt > cfg_.retry.maxAttempts) {
            // Attempt budget exhausted: escalate to the reliable slow
            // path and service the fault regardless — delayed, not lost.
            ++*retriesExhausted_;
            return true;
        }
        if (timed_out)
            ++*serviceReplays_;
        else
            ++*migrationRetries_;
        // The host core re-issues the service after backing off.
        busyCycles_ += cfg_.serviceInitiationCycles;
        eq_.scheduleIn(cfg_.retry.backoff(attempt),
                       [this, page] { complete(page); });
        return false;
    }

    void
    complete(PageId page)
    {
        if (injector_ != nullptr) {
            if (!admitService(page))
                return;
            attempts_.erase(page);
        }
        if (sink_ != nullptr)
            sink_->advanceTo(eq_.now());
        const FaultOutcome outcome = uvm_.handleFault(page);
        ++serviced_;

        Cycle done = eq_.now() + outcome.throttleCycles;
        // A dirty victim is written back to host memory over PCIe (a
        // clean page is simply dropped — the host copy is current).
        if (outcome.evicted && outcome.victimDirty)
            done = pcie_.transfer(done, kPageBytes);

        // Sequential block prefetch into free frames.  Pages with a fault
        // already queued are left to their own service.
        if (cfg_.prefetchDegree > 0) {
            const PageId block_end =
                (page / cfg_.prefetchBlockPages + 1) * cfg_.prefetchBlockPages;
            PageId q = page + 1;
            for (unsigned n = 0;
                 n < cfg_.prefetchDegree && q < block_end
                 && uvm_.hasFreeFrame();
                 ++n, ++q) {
                if (uvm_.resident(q) || waiters_.contains(q))
                    continue;
                uvm_.prefetchIn(q);
                done = pcie_.transfer(done, kPageBytes);
                ++prefetched_;
            }
        }
        // HIR batches ride the PCIe link with the evicted page; their
        // transfer latency extends this fault's completion (§V-B).
        if (hpe_ != nullptr) {
            const std::uint64_t hir_bytes = hpe_->takePendingTransferBytes();
            if (hir_bytes > 0)
                done = pcie_.transfer(done, hir_bytes);
        }

        auto node = waiters_.extract(page);
        HPE_ASSERT(!node.empty(), "fault completion with no waiters");
        eq_.schedule(done, [waiters = std::move(node.mapped())] {
            for (const Wakeup &w : waiters)
                w();
        });
    }

    DriverConfig cfg_;
    UvmMemoryManager &uvm_;
    PcieLink &pcie_;
    EventQueue &eq_;
    HpePolicy *hpe_;
    StatRegistry &stats_;
    std::string name_;

    std::deque<PageId> queue_;
    std::unordered_map<PageId, std::vector<Wakeup>> waiters_;
    Cycle nextStart_ = 0;
    Cycle busyCycles_ = 0;
    bool flushTimerArmed_ = false;

    trace::TraceSink *sink_ = nullptr;

    /** @{ chaos retry path (active only when an injector attaches) */
    FaultInjector *injector_ = nullptr;
    std::unordered_map<PageId, unsigned> attempts_;
    Counter *serviceReplays_ = nullptr;
    Counter *migrationRetries_ = nullptr;
    Counter *retriesExhausted_ = nullptr;
    /** @} */

    Counter &serviced_;
    Counter &merged_;
    Counter &prefetched_;
    Distribution &queueDepth_;
};

} // namespace hpe
