/**
 * @file
 * Timing model of the host-side GPU driver that services page faults.
 *
 * GPUs cannot run OS fault handlers in the shader pipeline, so faults are
 * forwarded to a software runtime on the host CPU (§II).  This model:
 *
 *  - accumulates faults in a FaultBatcher window (batchSize; real UVM
 *    drivers drain the GPU fault buffer in batches per interrupt) and
 *    services a drained batch with starts staggered by the initiation
 *    interval — the amortized batch-service model;
 *  - merges concurrent faults on the same page into one service;
 *  - runs the configured prefetcher (sequential / stride / density) after
 *    each serviced fault, filling only free frames;
 *  - performs eviction + migration through the UvmMemoryManager at service
 *    completion time;
 *  - charges HPE's periodic HIR transfers to the PCIe link and extends the
 *    triggering fault's completion accordingly (§V-B);
 *  - wakes every waiting warp when the page becomes resident (the
 *    replayable far-fault mechanism re-runs their translations).
 *
 * Under chaos mode (setInjector) a fault service can time out or its
 * migration transfer can fail before the page is made resident.  Both are
 * replayed through the same completion event after a bounded exponential
 * backoff (DriverConfig::retry); when the attempt budget is exhausted the
 * driver escalates to the reliable slow path and services the fault
 * unconditionally, so a fault can be delayed but never lost.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/event_queue.hpp"
#include "common/fault_injector.hpp"
#include "common/small_function.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "core/hpe_policy.hpp"
#include "driver/pcie.hpp"
#include "driver/resilience.hpp"
#include "driver/uvm_manager.hpp"
#include "prefetch/fault_batcher.hpp"
#include "prefetch/prefetcher.hpp"

namespace hpe {

/** Driver timing parameters. */
struct DriverConfig
{
    /** Fixed page-fault service latency (paper: 20 us). */
    Cycle faultServiceCycles = microsToCycles(20.0);
    /**
     * Minimum gap between consecutive fault-service *starts*.  Real UVM
     * runtimes pipeline fault handling (the 20 us latency spans several
     * PCIe round trips the host core is not busy for), so throughput is
     * higher than 1/latency; this models that pipelining while keeping
     * per-fault latency fixed.
     */
    Cycle serviceInitiationCycles = microsToCycles(5.0);

    /**
     * Sequential prefetch: on each serviced fault, migrate up to this
     * many following non-resident pages of the same aligned 16-page block
     * in as well (the NVIDIA driver's basic-block prefetch heuristic).
     * Prefetching only fills *free* frames — it never evicts.  0 = off
     * (the paper's configuration).
     *
     * Legacy knob: when prefetch.kind is None and this is non-zero, the
     * driver builds a sequential prefetcher with this degree and
     * prefetchBlockPages, preserving the original behaviour bit for bit.
     */
    unsigned prefetchDegree = 0;

    /** Aligned block size the legacy sequential prefetcher stays within. */
    unsigned prefetchBlockPages = 16;

    /** Pluggable prefetcher selection (kind None = demand paging only). */
    prefetch::PrefetchConfig prefetch{};

    /**
     * Accumulate up to this many faults before initiating service — real
     * UVM drivers drain the GPU's fault buffer in batches per interrupt.
     * 1 = service immediately (the paper's fixed-latency model).
     */
    unsigned batchSize = 1;

    /** Flush a partial batch after this long. */
    Cycle batchTimeoutCycles = microsToCycles(5.0);

    /** Backoff schedule for timed-out / failed fault services (chaos). */
    RetryPolicy retry{};
};

/** Serialized fault-service engine on the host CPU. */
class GpuDriver
{
  public:
    /**
     * Warp-wakeup continuation.  Move-only and small-buffer-inlined:
     * one is queued per faulting warp per fault, so the waiter lists
     * are a hot allocation site under fault storms.
     */
    using Wakeup = SmallFunction<48>;

    /**
     * @param cfg   timing parameters.
     * @param uvm   the functional memory manager (page table, policy).
     * @param pcie  the CPU-GPU link (HIR transfer accounting).
     * @param eq    event queue of the timing simulation.
     * @param stats registry receiving "<name>.*".
     * @param name  stat prefix, e.g. "driver".
     * @param hpe   when the policy under study is HPE, its handle so the
     *              driver can charge pending HIR transfer bytes; else null.
     */
    GpuDriver(const DriverConfig &cfg, UvmMemoryManager &uvm, PcieLink &pcie,
              EventQueue &eq, StatRegistry &stats, const std::string &name,
              HpePolicy *hpe = nullptr)
        : cfg_(cfg), uvm_(uvm), pcie_(pcie), eq_(eq), hpe_(hpe),
          stats_(stats), name_(name),
          batcher_(std::max(1u, cfg.batchSize)),
          serviced_(stats.counter(name + ".faultsServiced")),
          merged_(stats.counter(name + ".faultsMerged")),
          prefetched_(stats.counter(name + ".pagesPrefetched")),
          batches_(stats.counter(name + ".batches")),
          queueDepth_(stats.distribution(name + ".queueDepth")),
          batchOccupancy_(stats.distribution(name + ".batchOccupancy"))
    {
        // Legacy back-compat: the old --prefetch N knob maps onto the
        // sequential prefetcher with the configured block size.
        if (cfg_.prefetch.kind == prefetch::PrefetchKind::None
            && cfg_.prefetchDegree > 0) {
            cfg_.prefetch.kind = prefetch::PrefetchKind::Sequential;
            cfg_.prefetch.degree = cfg_.prefetchDegree;
            cfg_.prefetch.blockPages = cfg_.prefetchBlockPages;
        }
        prefetcher_ = prefetch::makePrefetcher(cfg_.prefetch);
    }

    /**
     * Attach a chaos injector: fault services may now time out or have
     * their migration transfer fail, entering the retry path.  The retry
     * counters are registered lazily here so an uninjected driver's stat
     * tree is unchanged.
     */
    void
    setInjector(FaultInjector *injector)
    {
        injector_ = injector;
        if (injector_ != nullptr && serviceReplays_ == nullptr) {
            serviceReplays_ = &stats_.counter(name_ + ".serviceReplays");
            migrationRetries_ = &stats_.counter(name_ + ".migrationRetries");
            retriesExhausted_ = &stats_.counter(name_ + ".retriesExhausted");
        }
    }

    /**
     * Attach a structured-event sink (nullable).  The driver owns the
     * timing run's clock hand-off: it advances the sink to the event
     * queue's current cycle before every fault service, so the clock-less
     * emitters underneath (UvmMemoryManager, the policy) stamp correctly.
     */
    void setTraceSink(trace::TraceSink *sink) { sink_ = sink; }

    /**
     * A translation for @p page faulted; @p wakeup fires once the page is
     * resident.  Faults on a page already being serviced merge.  The
     * optional @p stream identifies the faulting access stream (warp) so
     * stream-aware prefetchers can train per-stream state.
     *
     * @return true if this request initiated the fault service; false if
     *         it merged into one already in flight (the caller's visit is
     *         then an ordinary reference once the page arrives).
     */
    bool
    requestPage(PageId page, Wakeup wakeup, std::uint32_t stream = 0)
    {
        auto it = waiters_.find(page);
        if (it != waiters_.end()) {
            ++merged_;
            it->second.push_back(std::move(wakeup));
            return false;
        }
        waiters_[page].push_back(std::move(wakeup));
        streamOf_[page] = stream;
        batcher_.push(page, /*write=*/false, eq_.now());
        queueDepth_.sample(static_cast<double>(batcher_.size()));
        maybeLaunch();
        return true;
    }

    /** Total cycles the host core spent servicing faults (§V-C load). */
    Cycle busyCycles() const { return busyCycles_; }

    /** Faults currently queued or in service. */
    std::size_t pending() const { return waiters_.size(); }

  private:
    /** Apply the batching discipline: launch now or arm the flush timer. */
    void
    maybeLaunch()
    {
        if (cfg_.batchSize <= 1 || batcher_.full()) {
            launchAll();
            return;
        }
        if (!flushTimerArmed_) {
            flushTimerArmed_ = true;
            eq_.scheduleIn(cfg_.batchTimeoutCycles, [this] {
                flushTimerArmed_ = false;
                launchAll();
            });
        }
    }

    /**
     * Drain the fault batch, staggering service starts by the initiation
     * interval.  This is the amortized batch-service model: a batch of N
     * occupies the host for N initiation slices but completes within
     * faultServiceCycles + (N-1) * serviceInitiationCycles — far less
     * than N independent full-latency services.
     */
    void
    launchAll()
    {
        const auto batch = batcher_.flush();
        if (batch.empty())
            return; // flush timer fired after a size-triggered drain
        ++batches_;
        batchOccupancy_.sample(static_cast<double>(batch.size()));
        for (const prefetch::PendingFault &pf : batch) {
            const Cycle start = std::max(eq_.now(), nextStart_);
            nextStart_ = start + cfg_.serviceInitiationCycles;
            // Host-core occupancy: the initiation slice per fault.
            busyCycles_ += cfg_.serviceInitiationCycles;
            eq_.schedule(start + cfg_.faultServiceCycles,
                         [this, page = pf.page] { complete(page); });
        }
    }

    /**
     * Chaos gate in front of the functional fault service.  Runs before
     * handleFault so a replayed fault finds the page still non-resident.
     * @return true to proceed with the service; false when a retry of
     *         complete() was scheduled instead.
     */
    bool
    admitService(PageId page)
    {
        const bool timed_out = injector_->serviceTimesOut();
        const bool xfer_failed = !timed_out && injector_->pcieTransferFails();
        if (!timed_out && !xfer_failed)
            return true;
        const unsigned attempt = ++attempts_[page];
        if (attempt > cfg_.retry.maxAttempts) {
            // Attempt budget exhausted: escalate to the reliable slow
            // path and service the fault regardless — delayed, not lost.
            ++*retriesExhausted_;
            return true;
        }
        if (timed_out)
            ++*serviceReplays_;
        else
            ++*migrationRetries_;
        // The host core re-issues the service after backing off.
        busyCycles_ += cfg_.serviceInitiationCycles;
        eq_.scheduleIn(cfg_.retry.backoff(attempt),
                       [this, page] { complete(page); });
        return false;
    }

    void
    complete(PageId page)
    {
        if (injector_ != nullptr) {
            if (!admitService(page))
                return;
            attempts_.erase(page);
        }
        if (sink_ != nullptr)
            sink_->advanceTo(eq_.now());
        std::uint32_t stream = 0;
        if (auto sit = streamOf_.find(page); sit != streamOf_.end()) {
            stream = sit->second;
            streamOf_.erase(sit);
        }
        const FaultOutcome outcome = uvm_.handleFault(page);
        ++serviced_;

        Cycle done = eq_.now() + outcome.throttleCycles;
        // A dirty victim is written back to host memory over PCIe (a
        // clean page is simply dropped — the host copy is current).
        if (outcome.evicted && outcome.victimDirty)
            done = pcie_.transfer(done, kPageBytes);

        // Speculative migration into free frames (never evicts).  Pages
        // with a fault already queued are left to their own service; they
        // count as late — the speculation was right but lost the race.
        if (prefetcher_ != nullptr) {
            candidates_.clear();
            prefetcher_->candidates(
                page, stream, [this](PageId p) { return uvm_.resident(p); },
                candidates_);
            for (const PageId q : candidates_) {
                if (!uvm_.hasFreeFrame())
                    break;
                if (waiters_.contains(q)) {
                    uvm_.notePrefetchLate();
                    continue;
                }
                if (uvm_.prefetchIn(q) == PrefetchOutcome::Prefetched) {
                    done = pcie_.transfer(done, kPageBytes);
                    ++prefetched_;
                }
            }
        }
        // HIR batches ride the PCIe link with the evicted page; their
        // transfer latency extends this fault's completion (§V-B).
        if (hpe_ != nullptr) {
            const std::uint64_t hir_bytes = hpe_->takePendingTransferBytes();
            if (hir_bytes > 0)
                done = pcie_.transfer(done, hir_bytes);
        }

        auto node = waiters_.extract(page);
        HPE_ASSERT(!node.empty(), "fault completion with no waiters");
        eq_.schedule(done, [waiters = std::move(node.mapped())] {
            for (const Wakeup &w : waiters)
                w();
        });
    }

    DriverConfig cfg_;
    UvmMemoryManager &uvm_;
    PcieLink &pcie_;
    EventQueue &eq_;
    HpePolicy *hpe_;
    StatRegistry &stats_;
    std::string name_;

    prefetch::FaultBatcher batcher_;
    std::unique_ptr<prefetch::Prefetcher> prefetcher_;
    std::vector<PageId> candidates_;
    std::unordered_map<PageId, std::uint32_t> streamOf_;
    std::unordered_map<PageId, std::vector<Wakeup>> waiters_;
    Cycle nextStart_ = 0;
    Cycle busyCycles_ = 0;
    bool flushTimerArmed_ = false;

    trace::TraceSink *sink_ = nullptr;

    /** @{ chaos retry path (active only when an injector attaches) */
    FaultInjector *injector_ = nullptr;
    std::unordered_map<PageId, unsigned> attempts_;
    Counter *serviceReplays_ = nullptr;
    Counter *migrationRetries_ = nullptr;
    Counter *retriesExhausted_ = nullptr;
    /** @} */

    Counter &serviced_;
    Counter &merged_;
    Counter &prefetched_;
    Counter &batches_;
    Distribution &queueDepth_;
    Distribution &batchOccupancy_;
};

} // namespace hpe
