/**
 * @file
 * Driver resilience building blocks: the bounded-exponential-backoff retry
 * policy used for failed migrations and timed-out fault services, and the
 * refault-rate thrashing detector that drives graceful degradation.
 *
 * Real UVM stacks under oversubscription pressure do not fail hard: a
 * stalled transfer is retried, and a fault storm (every fault a refault)
 * is met by throttling the eviction pump and briefly pinning the hottest
 * pages so the working set can stabilize.  Both mechanisms here are fully
 * deterministic so chaos experiments replay bit-for-bit.
 */

#pragma once

#include <string>
#include <vector>

#include "common/log.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace hpe {

/** Bounded exponential backoff for driver-level retries. */
struct RetryPolicy
{
    /** Retries before the driver escalates to the reliable slow path. */
    unsigned maxAttempts = 4;

    /** Backoff before the first retry. */
    Cycle backoffBaseCycles = microsToCycles(2.0);

    /** Growth factor per further attempt. */
    unsigned backoffMultiplier = 2;

    /** Ceiling on a single backoff interval. */
    Cycle backoffCapCycles = microsToCycles(64.0);

    /** Backoff before retry number @p attempt (1-based). */
    Cycle
    backoff(unsigned attempt) const
    {
        HPE_ASSERT(attempt >= 1, "retry attempts are 1-based");
        Cycle b = backoffBaseCycles;
        for (unsigned i = 1; i < attempt; ++i) {
            if (b >= backoffCapCycles / (backoffMultiplier ? backoffMultiplier : 1))
                return backoffCapCycles;
            b *= backoffMultiplier;
        }
        return b < backoffCapCycles ? b : backoffCapCycles;
    }
};

/** Tuning knobs of the graceful-degradation mode. */
struct DegradationConfig
{
    bool enabled = false;

    /** Sliding window of serviced faults the refault rate is taken over. */
    std::uint32_t windowFaults = 256;

    /** Refault rate at which degraded mode is entered. */
    double enterRefaultRate = 0.5;

    /** Refault rate at which degraded mode is exited (hysteresis). */
    double exitRefaultRate = 0.25;

    /** Fraction of GPU memory pinned (hottest pages) on entry. */
    double pinFraction = 0.125;

    /** Extra completion latency per fault serviced while degraded
     *  (the throttled eviction pump). */
    Cycle throttleCycles = microsToCycles(10.0);

    /** inform() on every mode transition. */
    bool logTransitions = false;

    /** fatal() on inconsistent parameters. */
    void
    validate() const
    {
        if (windowFaults == 0)
            fatal("degradation window must be nonzero");
        if (enterRefaultRate <= exitRefaultRate)
            fatal("degradation enter rate {} must exceed exit rate {} "
                  "(hysteresis)", enterRefaultRate, exitRefaultRate);
        if (pinFraction < 0.0 || pinFraction > 1.0)
            fatal("pin fraction {} outside [0, 1]", pinFraction);
    }
};

/** What one detector update decided. */
enum class DegradationEvent : std::uint8_t
{
    None,
    Entered,
    Exited,
};

/**
 * Sliding-window refault-rate watermark detector with hysteretic entry and
 * exit.  The owner feeds it one observation per serviced fault and reacts
 * to the returned transition event (pin/unpin, throttle).
 */
class ThrashingDetector
{
  public:
    /**
     * @param cfg   watermarks and window geometry; validated here.
     * @param stats registry receiving "<name>.*".
     * @param name  stat prefix, e.g. "driver.uvm.degraded".
     */
    ThrashingDetector(const DegradationConfig &cfg, StatRegistry &stats,
                      const std::string &name)
        : cfg_(cfg), window_(cfg.windowFaults, 0),
          entries_(stats.counter(name + ".entries")),
          exits_(stats.counter(name + ".exits")),
          degradedFaults_(stats.counter(name + ".faults")),
          refaultRate_(stats.distribution(name + ".refaultRate"))
    {
        cfg_.validate();
    }

    /**
     * Record one serviced fault and update the mode.
     * @param is_refault the fault was on a previously evicted page.
     * @return the transition this observation caused, if any.
     */
    DegradationEvent
    onFault(bool is_refault)
    {
        refaultsInWindow_ += (is_refault ? 1 : 0) - window_[pos_];
        window_[pos_] = is_refault ? 1 : 0;
        pos_ = (pos_ + 1) % window_.size();
        observed_ = observed_ < window_.size() ? observed_ + 1 : observed_;
        if (degraded_)
            ++degradedFaults_;
        if (observed_ < window_.size())
            return DegradationEvent::None; // window not yet primed

        const double rate = static_cast<double>(refaultsInWindow_)
                            / static_cast<double>(window_.size());
        refaultRate_.sample(rate);
        if (!degraded_ && rate >= cfg_.enterRefaultRate) {
            degraded_ = true;
            ++entries_;
            if (cfg_.logTransitions)
                inform("degraded mode entered (refault rate {:.2f})", rate);
            return DegradationEvent::Entered;
        }
        if (degraded_ && rate <= cfg_.exitRefaultRate) {
            degraded_ = false;
            ++exits_;
            if (cfg_.logTransitions)
                inform("degraded mode exited (refault rate {:.2f})", rate);
            return DegradationEvent::Exited;
        }
        return DegradationEvent::None;
    }

    bool degraded() const { return degraded_; }
    const DegradationConfig &config() const { return cfg_; }
    std::uint64_t timesEntered() const { return entries_.value(); }
    std::uint64_t timesExited() const { return exits_.value(); }

  private:
    DegradationConfig cfg_;
    std::vector<std::uint8_t> window_; ///< circular refault bitmap
    std::size_t pos_ = 0;
    std::size_t observed_ = 0;  ///< observations, capped at window size
    std::uint32_t refaultsInWindow_ = 0;
    bool degraded_ = false;

    Counter &entries_;
    Counter &exits_;
    Counter &degradedFaults_;
    Distribution &refaultRate_;
};

} // namespace hpe
