/**
 * @file
 * CPU-GPU interconnect model (Table I: 16 GB/s).
 *
 * The link is a single shared resource with an occupancy horizon: a
 * transfer arriving at cycle t starts at max(t, horizon) and holds the
 * link for bytes/bandwidth cycles.  Page migrations, evicted pages, and
 * HIR flushes all contend for it.
 *
 * Under chaos mode the link can be injected with stalls: a stalled
 * transfer holds the link for extra cycles beyond what its payload needs
 * (modelling replayed TLPs and credit starvation on a real link).
 */

#pragma once

#include <cassert>
#include <cstdint>
#include <string>

#include "common/fault_injector.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "trace/trace_sink.hpp"

namespace hpe {

/** Link bandwidth and derived per-byte cost. */
struct PcieConfig
{
    double bandwidthGBs = 16.0;

    /** Cycles to move @p bytes at the configured bandwidth. */
    Cycle
    cyclesForBytes(std::uint64_t bytes) const
    {
        const double bytes_per_cycle =
            bandwidthGBs * 1e9 / (kCoreClockGHz * 1e9);
        const double cycles = static_cast<double>(bytes) / bytes_per_cycle;
        return cycles < 1.0 ? 1 : static_cast<Cycle>(cycles);
    }
};

/** Occupancy-tracking PCIe link. */
class PcieLink
{
  public:
    PcieLink(const PcieConfig &cfg, StatRegistry &stats, const std::string &name)
        : cfg_(cfg), stats_(stats), name_(name),
          bytesMoved_(stats.counter(name + ".bytes")),
          transfers_(stats.counter(name + ".transfers"))
    {}

    /**
     * Attach a chaos injector: subsequent transfers may be stalled.  The
     * stall counters are registered lazily here so an uninjected link's
     * stat tree is unchanged.
     */
    void
    setInjector(FaultInjector *injector)
    {
        injector_ = injector;
        if (injector_ != nullptr && stallCycles_ == nullptr)
            stallCycles_ = &stats_.counter(name_ + ".stallCycles");
    }

    /** Attach a structured-event sink (nullable); transfers then emit
     *  PcieTransfer events stamped with their start cycle. */
    void setTraceSink(trace::TraceSink *sink) { sink_ = sink; }

    /**
     * Reserve the link for @p bytes starting no earlier than @p now.
     * A zero-byte request is a caller bug (nothing moves); it is asserted
     * on in debug builds and a no-op in release builds — the link is not
     * held and no transfer is counted.
     * @return the cycle at which the transfer completes.
     */
    Cycle
    transfer(Cycle now, std::uint64_t bytes)
    {
        assert(bytes > 0 && "zero-byte PCIe transfer");
        if (bytes == 0)
            return now > horizon_ ? now : horizon_;
        const Cycle start = now > horizon_ ? now : horizon_;
        horizon_ = start + cfg_.cyclesForBytes(bytes);
        if (sink_ != nullptr)
            sink_->emitAt(start, trace::EventKind::PcieTransfer, 0, 0, bytes);
        if (injector_ != nullptr) {
            const Cycle stall = injector_->pcieStallCycles();
            horizon_ += stall;
            *stallCycles_ += stall;
        }
        bytesMoved_ += bytes;
        ++transfers_;
        return horizon_;
    }

    /** Cycle at which the link next becomes free. */
    Cycle horizon() const { return horizon_; }

    const PcieConfig &config() const { return cfg_; }

  private:
    PcieConfig cfg_;
    StatRegistry &stats_;
    std::string name_;
    Cycle horizon_ = 0;
    FaultInjector *injector_ = nullptr;
    trace::TraceSink *sink_ = nullptr;
    Counter &bytesMoved_;
    Counter &transfers_;
    Counter *stallCycles_ = nullptr; ///< registered when an injector attaches
};

} // namespace hpe
