/**
 * @file
 * CPU-GPU interconnect model (Table I: 16 GB/s).
 *
 * The link is a single shared resource with an occupancy horizon: a
 * transfer arriving at cycle t starts at max(t, horizon) and holds the
 * link for bytes/bandwidth cycles.  Page migrations, evicted pages, and
 * HIR flushes all contend for it.
 */

#pragma once

#include <cstdint>
#include <string>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace hpe {

/** Link bandwidth and derived per-byte cost. */
struct PcieConfig
{
    double bandwidthGBs = 16.0;

    /** Cycles to move @p bytes at the configured bandwidth. */
    Cycle
    cyclesForBytes(std::uint64_t bytes) const
    {
        const double bytes_per_cycle =
            bandwidthGBs * 1e9 / (kCoreClockGHz * 1e9);
        const double cycles = static_cast<double>(bytes) / bytes_per_cycle;
        return cycles < 1.0 ? 1 : static_cast<Cycle>(cycles);
    }
};

/** Occupancy-tracking PCIe link. */
class PcieLink
{
  public:
    PcieLink(const PcieConfig &cfg, StatRegistry &stats, const std::string &name)
        : cfg_(cfg),
          bytesMoved_(stats.counter(name + ".bytes")),
          transfers_(stats.counter(name + ".transfers"))
    {}

    /**
     * Reserve the link for @p bytes starting no earlier than @p now.
     * @return the cycle at which the transfer completes.
     */
    Cycle
    transfer(Cycle now, std::uint64_t bytes)
    {
        const Cycle start = now > horizon_ ? now : horizon_;
        horizon_ = start + cfg_.cyclesForBytes(bytes);
        bytesMoved_ += bytes;
        ++transfers_;
        return horizon_;
    }

    /** Cycle at which the link next becomes free. */
    Cycle horizon() const { return horizon_; }

    const PcieConfig &config() const { return cfg_; }

  private:
    PcieConfig cfg_;
    Cycle horizon_ = 0;
    Counter &bytesMoved_;
    Counter &transfers_;
};

} // namespace hpe
