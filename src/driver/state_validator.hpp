/**
 * @file
 * Cross-layer invariant checker for the UVM driver stack.
 *
 * After every fault service the residency story is told three times: by
 * the page table (page -> frame), by the frame pool (free list), and by
 * the eviction policy's internal bookkeeping (LRU list, HPE page-set
 * chain, ...).  A bug in any one layer silently skews the paper's
 * headline numbers long before it crashes.  The validator cross-checks
 * all three after every fault service and prefetch and panics with a
 * diagnostic dump on the first disagreement, so a corruption is caught
 * at the faulting event rather than thousands of events downstream.
 *
 * Checked invariants:
 *
 *  1. frame conservation: resident pages + free frames == capacity;
 *  2. frame sanity: every mapped frame is in range and mapped once;
 *  3. dirty set: every dirty page is resident;
 *  4. policy agreement: policies exposing trackedResidentPages() track
 *     exactly the page table's key set — or, with the page-size axis
 *     attached, exactly the *logical* page set (uncovered 4 KiB pages
 *     plus one head per large page);
 *  5. HPE internals: every chain entry sits in the partition list its
 *     tag claims, and HIR occupancy respects the configured geometry;
 *  6. page-size invariants: every large page is naturally aligned, fully
 *     resident, non-overlapping, mapped to an aligned contiguous frame
 *     run, and the coalescer's covered-page accounting matches.
 *
 * Attach via UvmMemoryManager::setValidateHook; tests keep it always on,
 * the CLI arms it behind --validate (it walks the full resident set per
 * fault, so it is not free).
 */

#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "core/hpe_policy.hpp"
#include "driver/uvm_manager.hpp"
#include "mem/coalescer.hpp"

namespace hpe {

/** Page-table / frame-pool / policy cross-checker. */
class StateValidator
{
  public:
    /**
     * @param uvm   the manager whose layers are cross-checked (not owned).
     * @param stats registry receiving "<name>.checks".
     * @param name  stat prefix, e.g. "validator".
     */
    StateValidator(UvmMemoryManager &uvm, StatRegistry &stats,
                   const std::string &name = "validator")
        : uvm_(uvm), checks_(stats.counter(name + ".checks"))
    {}

    /** Run all invariants; panic with a diagnostic dump on violation. */
    void
    check()
    {
        ++checks_;
        checkFrames();
        checkDirty();
        checkPolicy();
        if (auto *hpe = dynamic_cast<HpePolicy *>(&uvm_.policy()))
            checkHpe(*hpe);
        if (uvm_.coalescer() != nullptr)
            checkPageSizes(*uvm_.coalescer());
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        std::string dump = strformat(
            "state validator: {}\n"
            "  resident pages: {}\n  free frames: {}\n  capacity: {}\n"
            "  dirty pages: {}\n  policy: {}",
            what, uvm_.residentPages(), uvm_.frames().freeCount(),
            uvm_.capacity(), uvm_.dirtyPages().size(), uvm_.policy().name());
        panic("{}", dump);
    }

    void
    checkFrames() const
    {
        const auto &frames = uvm_.frames();
        if (uvm_.residentPages() + frames.freeCount() != frames.capacity())
            fail(strformat("frame conservation broken: {} resident + {} free "
                           "!= {} capacity", uvm_.residentPages(),
                           frames.freeCount(), frames.capacity()));
        std::vector<std::uint8_t> used(frames.capacity(), 0);
        uvm_.pageTable().forEach([&](PageId page, FrameId frame) {
            if (frame >= frames.capacity())
                fail(strformat("page {:#x} mapped to out-of-range frame {}",
                               page, frame));
            if (used[frame]++)
                fail(strformat("frame {} mapped twice (second page {:#x})",
                               frame, page));
        });
    }

    void
    checkDirty() const
    {
        uvm_.dirtyPages().forEach([this](PageId page) {
            if (!uvm_.pageTable().resident(page))
                fail(strformat("dirty page {:#x} is not resident", page));
        });
    }

    void
    checkPolicy() const
    {
        auto tracked = uvm_.policy().trackedResidentPages();
        if (!tracked)
            return; // policy offers no residency introspection
        // With the page-size axis attached the policy tracks *logical*
        // pages: every covered non-head subpage is represented by its
        // large page's head, so the expected cardinality shrinks by
        // (span - 1) per large page.
        std::size_t expected = uvm_.residentPages();
        if (const HugePageCoalescer *co = uvm_.coalescer(); co != nullptr) {
            expected -= co->coveredPages();
            expected += co->largePages();
        }
        if (tracked->size() != expected)
            fail(strformat("policy tracks {} resident pages, expected {} "
                           "logical pages (page table holds {})",
                           tracked->size(), expected, uvm_.residentPages()));
        std::sort(tracked->begin(), tracked->end());
        if (std::adjacent_find(tracked->begin(), tracked->end())
            != tracked->end())
            fail("policy resident set contains a duplicate page");
        for (PageId page : *tracked) {
            if (!uvm_.pageTable().resident(page))
                fail(strformat("policy tracks page {:#x} the page table "
                               "does not hold", page));
            if (uvm_.logicalPageOf(page) != page)
                fail(strformat("policy tracks page {:#x} that is covered "
                               "by large page {:#x}", page,
                               uvm_.logicalPageOf(page)));
        }
        // Same cardinality, no duplicates, every tracked page a resident
        // logical page  =>  tracked == logical page set.
    }

    void
    checkPageSizes(const HugePageCoalescer &co) const
    {
        std::size_t covered = 0;
        co.forEachLarge([&](PageId head, std::uint32_t span) {
            if ((span & (span - 1)) != 0 || span < 2)
                fail(strformat("large page {:#x} has bogus span {}", head,
                               span));
            if (head % span != 0)
                fail(strformat("large page {:#x} (span {}) is not naturally "
                               "aligned", head, span));
            const FrameId base = uvm_.pageTable().lookup(head);
            if (base == kInvalidId)
                fail(strformat("large page {:#x} head is not resident", head));
            if (base % span != 0)
                fail(strformat("large page {:#x} maps to unaligned frame "
                               "run base {}", head, base));
            for (std::uint32_t i = 0; i < span; ++i) {
                const FrameId f = uvm_.pageTable().lookup(head + i);
                if (f == kInvalidId)
                    fail(strformat("large page {:#x} subpage {:#x} is not "
                                   "resident", head, head + i));
                if (f != base + i)
                    fail(strformat("large page {:#x} subpage {:#x} maps to "
                                   "frame {} (expected contiguous {})",
                                   head, head + i, f, base + i));
                // Non-overlap + membership counted once: every subpage's
                // logical page must be this head (a second covering large
                // page would resolve some subpage elsewhere).
                if (uvm_.logicalPageOf(head + i) != head)
                    fail(strformat("subpage {:#x} of large page {:#x} "
                                   "resolves to logical page {:#x}",
                                   head + i, head,
                                   uvm_.logicalPageOf(head + i)));
            }
            covered += span;
        });
        if (covered != co.coveredPages())
            fail(strformat("coalescer covers {} pages but accounts {}",
                           covered, co.coveredPages()));
        if (covered > uvm_.residentPages())
            fail(strformat("coalescer covers {} pages with only {} resident",
                           covered, uvm_.residentPages()));
    }

    void
    checkHpe(HpePolicy &hpe) const
    {
        auto &chain = hpe.chain();
        const Partition parts[] = {Partition::Old, Partition::Middle,
                                   Partition::New};
        std::size_t walked = 0;
        for (Partition p : parts) {
            for (const ChainEntry &entry : chain.partition(p)) {
                ++walked;
                if (entry.part != p)
                    fail(strformat("HPE chain entry for set {:#x} tagged "
                                   "partition {} but linked in partition {}",
                                   entry.set, static_cast<int>(entry.part),
                                   static_cast<int>(p)));
                if (ChainEntry *found = chain.find(entry.set, entry.secondary);
                    found != &entry)
                    fail(strformat("HPE chain index lookup of set {:#x} "
                                   "does not return the linked entry",
                                   entry.set));
            }
        }
        if (walked != chain.size())
            fail(strformat("HPE chain lists link {} entries, index holds {}",
                           walked, chain.size()));
        const auto &cfg = hpe.config();
        if (hpe.hir().occupancy() > cfg.hirEntries)
            fail(strformat("HIR occupancy {} exceeds configured geometry {}",
                           hpe.hir().occupancy(), cfg.hirEntries));
    }

    UvmMemoryManager &uvm_;
    Counter &checks_;
};

} // namespace hpe
