/**
 * @file
 * Functional unified-memory manager: the part of the GPU driver that the
 * eviction study revolves around.
 *
 * Owns the GPU page table, the physical frame pool (whose size the
 * oversubscription rate constrains), and the eviction policy.  Both the
 * functional paging simulator and the timing GPU driver funnel every page
 * fault through handleFault(), which enforces the policy call protocol:
 * onFault -> selectVictim/onEvict (if memory is full) -> map/onMigrateIn.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/page_table.hpp"
#include "mem/radix_page_table.hpp"
#include "policy/eviction_policy.hpp"

namespace hpe {

/** What one fault service did (for TLB shootdown and PCIe accounting). */
struct FaultOutcome
{
    bool evicted = false;
    PageId victim = kInvalidId;
    /** The victim had been written: it must be written back over PCIe. */
    bool victimDirty = false;
    FrameId frame = kInvalidId;
};

/** Page table + frame pool + eviction policy, with the driver protocol. */
class UvmMemoryManager
{
  public:
    /** Invoked with each evicted page (TLB/cache shootdown hook). */
    using EvictHook = std::function<void(PageId)>;

    /**
     * @param num_frames GPU memory capacity in pages.
     * @param policy     the eviction policy under study (not owned).
     * @param stats      registry receiving "<name>.*".
     * @param name       stat prefix, e.g. "driver.uvm".
     */
    UvmMemoryManager(std::size_t num_frames, EvictionPolicy &policy,
                     StatRegistry &stats, const std::string &name)
        : policy_(policy), frames_(num_frames),
          faults_(stats.counter(name + ".faults")),
          evictions_(stats.counter(name + ".evictions")),
          hits_(stats.counter(name + ".hits")),
          refaults_(stats.counter(name + ".refaults")),
          dirtyEvictions_(stats.counter(name + ".dirtyEvictions")),
          prefetches_(stats.counter(name + ".prefetches"))
    {}

    /** True if @p page is mapped in GPU memory. */
    bool resident(PageId page) const { return table_.resident(page); }

    /** Record a reference that hit (page-walk hit); updates the policy. */
    void
    recordHit(PageId page)
    {
        ++hits_;
        policy_.onHit(page);
    }

    /** Mark @p page written; its eviction then requires a writeback. */
    void
    markDirty(PageId page)
    {
        HPE_ASSERT(table_.resident(page), "write to non-resident page {:#x}", page);
        dirty_.insert(page);
    }

    bool isDirty(PageId page) const { return dirty_.contains(page); }

    /**
     * Service a page fault on @p page: evict one page if memory is full,
     * then migrate @p page in.  @p page must not be resident.
     */
    FaultOutcome
    handleFault(PageId page)
    {
        HPE_ASSERT(!table_.resident(page), "fault on resident page {:#x}", page);
        ++faults_;
        if (evictedOnce_.contains(page))
            ++refaults_; // a page the policy once evicted came back
        policy_.onFault(page);

        FaultOutcome out;
        if (frames_.full()) {
            const PageId victim = policy_.selectVictim();
            HPE_ASSERT(table_.resident(victim),
                       "policy chose non-resident victim {:#x}", victim);
            frames_.release(table_.unmap(victim));
            if (radixMirror_ != nullptr)
                radixMirror_->unmap(victim);
            policy_.onEvict(victim);
            ++evictions_;
            evictedOnce_.insert(victim);
            out.evicted = true;
            out.victim = victim;
            out.victimDirty = dirty_.erase(victim) > 0;
            if (out.victimDirty)
                ++dirtyEvictions_;
            if (evictHook_)
                evictHook_(victim);
        }
        out.frame = frames_.allocate();
        table_.map(page, out.frame);
        if (radixMirror_ != nullptr)
            radixMirror_->map(page, out.frame);
        policy_.onMigrateIn(page);
        return out;
    }

    /**
     * Migrate @p page in as a prefetch: no fault is charged and the
     * eviction policy only learns of the arrival (onMigrateIn).  Only
     * legal while a free frame exists — prefetching never evicts.
     */
    void
    prefetchIn(PageId page)
    {
        HPE_ASSERT(!table_.resident(page), "prefetch of resident page {:#x}", page);
        HPE_ASSERT(!frames_.full(), "prefetch would require an eviction");
        const FrameId frame = frames_.allocate();
        table_.map(page, frame);
        if (radixMirror_ != nullptr)
            radixMirror_->map(page, frame);
        policy_.onMigrateIn(page);
        ++prefetches_;
    }

    std::uint64_t prefetches() const { return prefetches_.value(); }

    /** True while a free frame remains (prefetching is allowed). */
    bool hasFreeFrame() const { return !frames_.full(); }

    /**
     * Mirror every mapping change into @p radix (the multi-level walker's
     * table); pass nullptr to stop mirroring.  The mirror must be empty
     * (or consistent) when attached.
     */
    void
    setRadixMirror(RadixPageTable *radix)
    {
        HPE_ASSERT(radix == nullptr || radix->size() == table_.size(),
                   "radix mirror out of sync at attach");
        radixMirror_ = radix;
    }

    void setEvictHook(EvictHook hook) { evictHook_ = std::move(hook); }

    const PageTable &pageTable() const { return table_; }
    PageTable &pageTable() { return table_; }
    std::size_t capacity() const { return frames_.capacity(); }
    std::size_t residentPages() const { return table_.size(); }

    std::uint64_t faults() const { return faults_.value(); }
    std::uint64_t evictions() const { return evictions_.value(); }
    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t refaults() const { return refaults_.value(); }
    std::uint64_t dirtyEvictions() const { return dirtyEvictions_.value(); }

  private:
    EvictionPolicy &policy_;
    PageTable table_;
    FrameAllocator frames_;
    EvictHook evictHook_;
    RadixPageTable *radixMirror_ = nullptr;
    std::unordered_set<PageId> evictedOnce_;
    std::unordered_set<PageId> dirty_;
    Counter &faults_;
    Counter &evictions_;
    Counter &hits_;
    Counter &refaults_;
    Counter &dirtyEvictions_;
    Counter &prefetches_;
};

} // namespace hpe
