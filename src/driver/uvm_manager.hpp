/**
 * @file
 * Functional unified-memory manager: the part of the GPU driver that the
 * eviction study revolves around.
 *
 * Owns the GPU page table, the physical frame pool (whose size the
 * oversubscription rate constrains), and the eviction policy.  Both the
 * functional paging simulator and the timing GPU driver funnel every page
 * fault through handleFault(), which enforces the policy call protocol:
 * onFault -> selectVictim/onEvict (if memory is full) -> map/onMigrateIn.
 *
 * Two optional resilience attachments hang off this funnel:
 *
 *  - graceful degradation (enableDegradation): a refault-rate thrashing
 *    detector that, while tripped, throttles fault completion and softly
 *    pins the hottest resident pages (refreshing them into the policy so
 *    every policy benefits without protocol changes);
 *  - a validation hook (setValidateHook), run after every fault service
 *    and prefetch, through which the cross-layer StateValidator checks
 *    page table <-> frame pool <-> policy bookkeeping agreement;
 *  - the multi-page-size axis (enablePageSizes): a huge-page coalescer
 *    that promotes fully-resident aligned 4 KiB runs into 64 KiB/2 MiB
 *    large pages and splinters them under eviction pressure, with the
 *    policy and the TLBs seeing one logical page per large page.
 *
 * None is attached by default and the default path is unchanged.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "driver/resilience.hpp"
#include "mem/coalescer.hpp"
#include "mem/page_index.hpp"
#include "mem/page_size.hpp"
#include "mem/page_table.hpp"
#include "mem/radix_page_table.hpp"
#include "policy/eviction_policy.hpp"
#include "trace/trace_sink.hpp"

namespace hpe {

/** What a speculative migration attempt did. */
enum class PrefetchOutcome : std::uint8_t
{
    Prefetched,      ///< the page is now resident (speculatively)
    NoFreeFrame,     ///< memory is full — prefetching never evicts
    AlreadyResident, ///< benign race: a fault/prefetch landed it first
};

/** What one fault service did (for TLB shootdown and PCIe accounting). */
struct FaultOutcome
{
    bool evicted = false;
    PageId victim = kInvalidId;
    /** The victim had been written: it must be written back over PCIe. */
    bool victimDirty = false;
    FrameId frame = kInvalidId;
    /** Extra completion latency while degraded (throttled eviction pump). */
    Cycle throttleCycles = 0;
};

/** Page table + frame pool + eviction policy, with the driver protocol. */
class UvmMemoryManager
{
  public:
    /** Invoked with each evicted page (TLB/cache shootdown hook). */
    using EvictHook = std::function<void(PageId)>;
    /** Invoked after every fault service / prefetch (invariant checking). */
    using ValidateHook = std::function<void()>;

    /**
     * @param num_frames GPU memory capacity in pages.
     * @param policy     the eviction policy under study (not owned).
     * @param stats      registry receiving "<name>.*".
     * @param name       stat prefix, e.g. "driver.uvm".
     */
    UvmMemoryManager(std::size_t num_frames, EvictionPolicy &policy,
                     StatRegistry &stats, const std::string &name)
        : policy_(policy), frames_(num_frames), stats_(stats), name_(name),
          faults_(stats.counter(name + ".faults")),
          evictions_(stats.counter(name + ".evictions")),
          hits_(stats.counter(name + ".hits")),
          refaults_(stats.counter(name + ".refaults")),
          dirtyEvictions_(stats.counter(name + ".dirtyEvictions")),
          prefetches_(stats.counter(name + ".prefetches")),
          prefetchUseful_(stats.counter(name + ".prefetchUseful")),
          prefetchWasted_(stats.counter(name + ".prefetchWasted")),
          prefetchLate_(stats.counter(name + ".prefetchLate"))
    {
        // Memory capacity bounds every policy's resident-page bookkeeping;
        // letting it pre-size its indices keeps rehashing off the fault path.
        policy.reserveCapacity(num_frames);
    }

    /** True if @p page is mapped in GPU memory. */
    bool resident(PageId page) const { return table_.resident(page); }

    /** Record a reference that hit (page-walk hit); updates the policy. */
    void
    recordHit(PageId page)
    {
        ++hits_;
        noteSpeculativeUse(page);
        if (detector_ != nullptr)
            lastTouch_[page] = ++touchClock_;
        policy_.onHit(logicalPageOf(page));
    }

    /**
     * The logical page standing for @p page in the policy: a covering
     * large page's head, or @p page itself.  One pointer test when no
     * page-size axis is attached.
     */
    PageId
    logicalPageOf(PageId page) const
    {
        return coalescer_ == nullptr ? page : coalescer_->logicalPageOf(page);
    }

    /** TLB key of @p page: large translations cover their full span. */
    PageId translationKey(PageId page) const { return logicalPageOf(page); }

    /**
     * A real reference touched @p page: if it arrived by prefetch and had
     * not been referenced yet, count the speculation as useful.  Called
     * from recordHit() and, in timing runs where HPE's walk hits bypass
     * the manager (the walker feeds the HIR cache directly), from the
     * GpuSystem hit observer.
     */
    void
    noteSpeculativeUse(PageId page)
    {
        if (speculative_.size() != 0 && speculative_.erase(page))
            ++prefetchUseful_;
    }

    /** Mark @p page written; its eviction then requires a writeback. */
    void
    markDirty(PageId page)
    {
        HPE_ASSERT(table_.resident(page), "write to non-resident page {:#x}", page);
        dirty_.insert(page);
    }

    bool isDirty(PageId page) const { return dirty_.contains(page); }

    /**
     * Service a page fault on @p page: evict one page if memory is full,
     * then migrate @p page in.  @p page must not be resident.
     */
    FaultOutcome
    handleFault(PageId page)
    {
        HPE_ASSERT(!table_.resident(page), "fault on resident page {:#x}", page);
        ++faults_;
        const bool is_refault = evictedOnce_.contains(page);
        if (is_refault)
            ++refaults_; // a page the policy once evicted came back
        if (sink_ != nullptr)
            sink_->emit(trace::EventKind::FarFault, 0, page, is_refault);
        policy_.onFault(page);

        FaultOutcome out;
        if (frames_.full()) {
            PageId victim = policy_.selectVictim();
            HPE_ASSERT(table_.resident(victim),
                       "policy chose non-resident victim {:#x}", victim);
            if (coalescer_ != nullptr) {
                // A large-page victim splinters first (its subpages
                // re-enter the policy cold), then only the head itself is
                // evicted — the single-victim protocol is preserved.
                coalescer_->beforeEvict(victim);
            }
            if (detector_ != nullptr && pinned_.erase(victim) > 0) {
                // The policy insisted on a pinned page: the pin is soft —
                // it breaks rather than deadlock a full frame pool.
                ++*pinnedVictimOverrides_;
            }
            frames_.release(table_.unmap(victim));
            if (radixMirror_ != nullptr)
                radixMirror_->unmap(victim);
            if (coalescer_ != nullptr)
                coalescer_->onUnmap(victim);
            policy_.onEvict(victim);
            ++evictions_;
            evictedOnce_.insert(victim);
            if (detector_ != nullptr)
                lastTouch_.erase(victim);
            out.evicted = true;
            out.victim = victim;
            if (speculative_.size() != 0 && speculative_.erase(victim))
                ++prefetchWasted_; // prefetched, never referenced, now gone
            out.victimDirty = dirty_.erase(victim);
            if (out.victimDirty)
                ++dirtyEvictions_;
            if (sink_ != nullptr)
                sink_->emit(trace::EventKind::Eviction, 0, victim,
                            out.victimDirty);
            if (evictHook_)
                evictHook_(victim);
        }
        out.frame = frames_.allocate();
        table_.map(page, out.frame);
        if (radixMirror_ != nullptr)
            radixMirror_->map(page, out.frame);
        if (sink_ != nullptr)
            sink_->emit(trace::EventKind::Migration, 0, page, 0);
        policy_.onMigrateIn(page);
        if (coalescer_ != nullptr)
            coalescer_->onMap(page);

        if (detector_ != nullptr) {
            lastTouch_[page] = ++touchClock_;
            switch (detector_->onFault(is_refault)) {
              case DegradationEvent::Entered:
                if (sink_ != nullptr)
                    sink_->emit(trace::EventKind::Degradation, 0, 0, 0);
                applyPinning();
                break;
              case DegradationEvent::Exited:
                if (sink_ != nullptr)
                    sink_->emit(trace::EventKind::Degradation, 1, 0, 0);
                pinned_.clear();
                break;
              case DegradationEvent::None:
                break;
            }
            if (detector_->degraded())
                out.throttleCycles = detector_->config().throttleCycles;
        }
        if (validateHook_)
            validateHook_();
        return out;
    }

    /**
     * Migrate @p page in as a prefetch: no fault is charged and the
     * eviction policy learns of the arrival through onPrefetchIn, which
     * places the page in its coldest tier.  Prefetching never evicts and
     * never displaces an existing mapping; instead of asserting, both
     * conditions report a typed outcome so speculative callers can race
     * demand faults safely.
     */
    PrefetchOutcome
    prefetchIn(PageId page)
    {
        if (table_.resident(page))
            return PrefetchOutcome::AlreadyResident;
        if (frames_.full())
            return PrefetchOutcome::NoFreeFrame;
        const FrameId frame = frames_.allocate();
        table_.map(page, frame);
        if (radixMirror_ != nullptr)
            radixMirror_->map(page, frame);
        if (sink_ != nullptr)
            sink_->emit(trace::EventKind::Migration, 1, page, 0);
        policy_.onPrefetchIn(page);
        if (coalescer_ != nullptr)
            coalescer_->onMap(page);
        speculative_.insert(page);
        if (detector_ != nullptr)
            lastTouch_[page] = ++touchClock_;
        ++prefetches_;
        if (validateHook_)
            validateHook_();
        return PrefetchOutcome::Prefetched;
    }

    /** A prefetch candidate already had a demand fault pending: the
     *  speculation would have helped, but came too late to matter. */
    void notePrefetchLate() { ++prefetchLate_; }

    std::uint64_t prefetches() const { return prefetches_.value(); }
    /** Prefetched pages later referenced before eviction. */
    std::uint64_t prefetchUseful() const { return prefetchUseful_.value(); }
    /** Prefetched pages evicted without ever being referenced. */
    std::uint64_t prefetchWasted() const { return prefetchWasted_.value(); }
    /** Prefetch candidates that already had a pending demand fault. */
    std::uint64_t prefetchLate() const { return prefetchLate_.value(); }

    /** True while a free frame remains (prefetching is allowed). */
    bool hasFreeFrame() const { return !frames_.full(); }

    /**
     * Mirror every mapping change into @p radix (the multi-level walker's
     * table); pass nullptr to stop mirroring.  The mirror must be empty
     * (or consistent) when attached.
     */
    void
    setRadixMirror(RadixPageTable *radix)
    {
        HPE_ASSERT(radix == nullptr || radix->size() == table_.size(),
                   "radix mirror out of sync at attach");
        radixMirror_ = radix;
        if (coalescer_ != nullptr)
            coalescer_->setRadixMirror(radix);
    }

    void setEvictHook(EvictHook hook) { evictHook_ = std::move(hook); }

    /** Run @p hook after every fault service and prefetch. */
    void setValidateHook(ValidateHook hook) { validateHook_ = std::move(hook); }

    /**
     * Attach a structured-event sink (nullable; null detaches).  Fault,
     * eviction, migration, and degradation-transition events are emitted
     * at the sink's current clock; with no sink the fault path costs one
     * pointer test per site.
     */
    void
    setTraceSink(trace::TraceSink *sink)
    {
        sink_ = sink;
        if (coalescer_ != nullptr)
            coalescer_->setTraceSink(sink);
    }

    /**
     * Attach the multi-page-size axis: frame-run tracking plus the
     * huge-page coalescer (observe-only when cfg.coalesce is false).  A
     * 4 KiB-only config attaches nothing — the default fault path gains
     * exactly one null-pointer test per site, which is the bit-exactness
     * guarantee the golden digests pin.  Must run before the first fault.
     */
    void
    enablePageSizes(const PageSizeConfig &cfg)
    {
        HPE_ASSERT(coalescer_ == nullptr, "page sizes enabled twice");
        if (!cfg.active())
            return;
        HPE_ASSERT(table_.size() == 0,
                   "page sizes must be enabled before the first mapping");
        frames_.enableRunTracking();
        coalescer_ = std::make_unique<HugePageCoalescer>(
            cfg, table_, frames_, policy_, stats_, name_ + ".coalesce");
        coalescer_->setTraceSink(sink_);
        coalescer_->setRadixMirror(radixMirror_);
        coalescer_->setShootdownHook(
            [this](PageId page) {
                if (evictHook_)
                    evictHook_(page);
            });
    }

    /** The page-size machinery, or null in the 4 KiB-only default. */
    const HugePageCoalescer *coalescer() const { return coalescer_.get(); }
    HugePageCoalescer *coalescer() { return coalescer_.get(); }

    /**
     * Arm graceful degradation: a thrashing detector over the refault
     * stream that throttles fault completion and softly pins the hottest
     * pages while tripped.  Stats land under "<name of this manager>.degraded.*".
     */
    void
    enableDegradation(const DegradationConfig &cfg)
    {
        HPE_ASSERT(detector_ == nullptr, "degradation enabled twice");
        detector_ = std::make_unique<ThrashingDetector>(cfg, stats_,
                                                        name_ + ".degraded");
        pinnedPages_ = &stats_.counter(name_ + ".degraded.pinnedPages");
        pinnedVictimOverrides_ =
            &stats_.counter(name_ + ".degraded.pinnedVictimOverrides");
    }

    /** @{ degradation introspection (null/empty when not enabled) */
    const ThrashingDetector *degradation() const { return detector_.get(); }
    bool degraded() const { return detector_ != nullptr && detector_->degraded(); }
    bool pinnedPage(PageId page) const { return pinned_.contains(page); }
    std::size_t pinnedCount() const { return pinned_.size(); }
    /** @} */

    const PageTable &pageTable() const { return table_; }
    PageTable &pageTable() { return table_; }
    const FrameAllocator &frames() const { return frames_; }
    EvictionPolicy &policy() { return policy_; }
    const DensePageSet &dirtyPages() const { return dirty_; }
    std::size_t capacity() const { return frames_.capacity(); }
    std::size_t residentPages() const { return table_.size(); }

    std::uint64_t faults() const { return faults_.value(); }
    std::uint64_t evictions() const { return evictions_.value(); }
    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t refaults() const { return refaults_.value(); }
    std::uint64_t dirtyEvictions() const { return dirtyEvictions_.value(); }

  private:
    /**
     * Degraded-mode entry: pin the hottest resident pages (most recently
     * touched) and refresh them into the policy, coldest first, so the
     * hottest page ends at the policy's MRU position.  The refresh is
     * ordinary reference information, so it works for every policy
     * without extending the protocol; pins are soft (see handleFault).
     */
    void
    applyPinning()
    {
        const auto want = static_cast<std::size_t>(
            static_cast<double>(frames_.capacity())
            * detector_->config().pinFraction);
        if (want == 0)
            return;
        std::vector<std::pair<std::uint64_t, PageId>> hot;
        hot.reserve(lastTouch_.size());
        for (const auto &[page, touch] : lastTouch_)
            if (table_.resident(page))
                hot.emplace_back(touch, page);
        const std::size_t count = std::min(want, hot.size());
        if (count == 0)
            return;
        std::partial_sort(hot.begin(), hot.begin() + count, hot.end(),
                          std::greater<>());
        pinned_.clear();
        for (std::size_t i = count; i-- > 0;) {
            pinned_.insert(hot[i].second);
            policy_.onHit(logicalPageOf(hot[i].second));
        }
        *pinnedPages_ += count;
    }

    EvictionPolicy &policy_;
    PageTable table_;
    FrameAllocator frames_;
    StatRegistry &stats_;
    std::string name_;
    EvictHook evictHook_;
    ValidateHook validateHook_;
    RadixPageTable *radixMirror_ = nullptr;
    trace::TraceSink *sink_ = nullptr;
    /** Multi-page-size machinery (allocated by enablePageSizes only). */
    std::unique_ptr<HugePageCoalescer> coalescer_;
    DensePageSet evictedOnce_;
    DensePageSet dirty_;
    /** Prefetched pages that have not yet been demand-referenced. */
    DensePageSet speculative_;

    /** @{ graceful degradation (allocated by enableDegradation only) */
    std::unique_ptr<ThrashingDetector> detector_;
    std::unordered_set<PageId> pinned_;
    std::unordered_map<PageId, std::uint64_t> lastTouch_;
    std::uint64_t touchClock_ = 0;
    Counter *pinnedPages_ = nullptr;
    Counter *pinnedVictimOverrides_ = nullptr;
    /** @} */

    Counter &faults_;
    Counter &evictions_;
    Counter &hits_;
    Counter &refaults_;
    Counter &dirtyEvictions_;
    Counter &prefetches_;
    Counter &prefetchUseful_;
    Counter &prefetchWasted_;
    Counter &prefetchLate_;
};

} // namespace hpe
