/**
 * @file
 * Quickstart: run one workload under every eviction policy, functionally
 * and with timing, and print the comparison.
 *
 *   ./quickstart [APP] [OVERSUB]
 *
 * APP is a paper abbreviation (default HSD, the thrashing 3D stencil);
 * OVERSUB is the fraction of the footprint that fits in GPU memory
 * (default 0.75).
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "workload/apps.hpp"

int
main(int argc, char **argv)
{
    const std::string app = argc > 1 ? argv[1] : "HSD";
    const double oversub = argc > 2 ? std::atof(argv[2]) : 0.75;

    const hpe::Trace trace = hpe::buildApp(app);
    std::cout << "workload " << trace.abbr() << " (" << trace.application()
              << ", " << trace.suite() << ", pattern type "
              << hpe::patternName(trace.pattern()) << ")\n"
              << "footprint " << trace.footprintPages() << " pages, "
              << trace.size() << " page visits, GPU memory "
              << hpe::framesFor(trace, oversub) << " frames ("
              << oversub * 100 << "% of footprint)\n\n";

    hpe::RunConfig cfg;
    cfg.oversub = oversub;

    hpe::TextTable table({"policy", "faults", "evictions", "timing faults",
                          "IPC", "host load"});
    for (hpe::PolicyKind kind : hpe::allPolicyKinds()) {
        const auto functional = hpe::runFunctional(trace, kind, cfg);
        const auto timing = hpe::runTiming(trace, kind, cfg);
        table.addRow({hpe::policyKindName(kind),
                      std::to_string(functional.faults),
                      std::to_string(functional.evictions),
                      std::to_string(timing.faults),
                      hpe::TextTable::num(timing.ipc, 4),
                      hpe::TextTable::num(timing.hostLoad * 100, 1) + "%"});
    }
    table.print();
    return 0;
}
