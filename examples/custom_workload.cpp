/**
 * @file
 * Building a custom workload against the public API:
 *
 *  1. compose a trace from the pattern builders (a tiled compute kernel
 *     with a hot lookup table and periodic re-sweeps);
 *  2. save it to a trace file and load it back (the format real traces
 *     can be converted into);
 *  3. run it under every policy, including the extra related-work
 *     baselines (plain CLOCK, LFU).
 *
 *   ./custom_workload [PAGES] [OVERSUB] [TRACE_FILE]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "hpe.hpp"

int
main(int argc, char **argv)
{
    using namespace hpe;
    const std::size_t pages = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1024;
    const double oversub = argc > 2 ? std::atof(argv[2]) : 0.75;
    const std::string path =
        argc > 3 ? argv[3] : "/tmp/hpe_custom_workload.trace";

    // 1. Compose: a lookup table (one eighth of the footprint) that every
    //    tile re-reads, plus streaming tiles — an LRU-averse mix.
    Rng rng(7);
    Trace trace("CST", "custom-tiled", "user", PatternType::V);
    const std::size_t table_pages = pages / 8;
    const std::size_t tile = (pages - table_pages) / 8;
    for (std::size_t t = 0; t < 8; ++t) {
        trace.beginKernel(); // one launch per tile
        patterns::stream(trace, table_pages + t * tile, tile, 1, 16);
        patterns::stream(trace, 0, table_pages, 1, 8); // hot table re-read
        patterns::partRepetitivePages(trace, table_pages + t * tile, tile,
                                      0.25, 2, 16, rng, 8);
    }

    // 2. Round-trip through the trace file format.
    saveTraceFile(trace, path);
    const Trace loaded = loadTraceFile(path);
    std::cout << "trace saved to " << path << " and reloaded: "
              << loaded.size() << " visits, " << loaded.footprintPages()
              << " pages, " << loaded.kernelCount() << " kernels\n\n";

    // 3. Compare every policy, including CLOCK and LFU.
    RunConfig cfg;
    cfg.oversub = oversub;
    TextTable t({"policy", "faults", "evictions", "IPC"});
    for (PolicyKind kind : extendedPolicyKinds()) {
        const auto f = runFunctional(loaded, kind, cfg);
        const auto timing = runTiming(loaded, kind, cfg);
        t.addRow({policyKindName(kind), std::to_string(f.faults),
                  std::to_string(f.evictions), TextTable::num(timing.ipc, 4)});
    }
    t.print();
    std::remove(path.c_str());
    return 0;
}
