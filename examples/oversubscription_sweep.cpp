/**
 * @file
 * Oversubscription sweep: for one application, sweep the GPU memory
 * capacity from 100% down to 30% of the footprint and chart how each
 * policy's fault count and IPC degrade — the motivating experiment for
 * eviction-policy work in unified memory.
 *
 *   ./oversubscription_sweep [APP] [SEED]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "workload/apps.hpp"

int
main(int argc, char **argv)
{
    using namespace hpe;
    const std::string app = argc > 1 ? argv[1] : "SRD";
    const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

    const Trace trace = buildApp(app, 1.0, seed);
    std::cout << "sweep for " << trace.abbr() << " (" << trace.application()
              << ", pattern type " << patternName(trace.pattern()) << ", "
              << trace.footprintPages() << " pages)\n\n";

    TextTable faults({"memory (% of footprint)", "LRU", "RRIP", "CLOCK-Pro",
                      "HPE", "Ideal"});
    TextTable ipc({"memory (% of footprint)", "LRU", "RRIP", "CLOCK-Pro",
                   "HPE", "Ideal"});
    const std::vector<PolicyKind> kinds = {PolicyKind::Lru, PolicyKind::Rrip,
                                           PolicyKind::ClockPro,
                                           PolicyKind::Hpe, PolicyKind::Ideal};
    for (int pct : {100, 90, 75, 60, 50, 40, 30}) {
        RunConfig cfg;
        cfg.oversub = pct / 100.0;
        cfg.seed = seed;
        std::vector<std::string> frow{std::to_string(pct)};
        std::vector<std::string> irow{std::to_string(pct)};
        for (PolicyKind kind : kinds) {
            frow.push_back(
                std::to_string(runFunctional(trace, kind, cfg).faults));
            irow.push_back(TextTable::num(runTiming(trace, kind, cfg).ipc, 4));
        }
        faults.addRow(frow);
        ipc.addRow(irow);
    }
    std::cout << "page faults (functional, exact):\n";
    faults.print();
    std::cout << "\ntiming IPC:\n";
    ipc.print();
    return 0;
}
