/**
 * @file
 * Prefetch explorer: run one Table II application under every prefetcher
 * at a range of prefetch degrees and show what speculation buys (and
 * costs) — demand far-faults, speculative migrations, accuracy (fraction
 * of prefetches referenced before eviction), and waste.
 *
 *   ./prefetch_explorer [APP] [OVERSUB] [SCALE] [BATCH] [SEED]
 *
 *   APP     Table II abbreviation (default HSD)
 *   OVERSUB fraction of the footprint that fits (default 0.75)
 *   SCALE   footprint scale factor (default 0.25)
 *   BATCH   fault-batch window (default 256, the hardware buffer size)
 *   SEED    RNG seed (default 1)
 *
 * Prefetched pages enter the eviction policy's cold tier and never evict
 * resident data, so a useless prefetcher degrades gracefully: its pages
 * are simply the first victims once memory fills.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "sim/paging_simulator.hpp"
#include "workload/apps.hpp"

int
main(int argc, char **argv)
{
    using namespace hpe;
    using prefetch::PrefetchKind;

    const std::string app = argc > 1 ? argv[1] : "HSD";
    const double oversub = argc > 2 ? std::atof(argv[2]) : 0.75;
    const double scale = argc > 3 ? std::atof(argv[3]) : 0.25;
    const unsigned batch = argc > 4
        ? static_cast<unsigned>(std::strtoul(argv[4], nullptr, 10))
        : prefetch::FaultBatcher::kDefaultWindow;
    const std::uint64_t seed =
        argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 1;

    const Trace trace = buildApp(app, scale);
    const std::size_t frames = framesFor(trace, oversub);
    std::cout << app << " (" << trace.application() << ", type "
              << patternName(appSpec(app).type) << "), "
              << trace.footprintPages() << " pages, " << trace.size()
              << " visits, memory " << frames << " frames, fault batch "
              << batch << "\n\n";

    TextTable t({"prefetcher", "degree", "faults", "vs none", "prefetches",
                 "useful", "wasted", "late", "accuracy"});
    std::uint64_t none_faults = 0;
    for (const PrefetchKind kind : prefetch::allPrefetchKinds()) {
        for (const unsigned degree : {2u, 4u, 8u, 16u}) {
            StatRegistry stats;
            auto policy = makePolicy(PolicyKind::Hpe, trace, stats, {}, seed);
            PagingOptions opts;
            opts.faultBatch = batch;
            opts.prefetch.kind = kind;
            opts.prefetch.degree = degree;
            const auto r = runPaging(trace, *policy, frames, stats, opts);
            if (kind == PrefetchKind::None)
                none_faults = r.faults;
            const double vs = none_faults > 0
                ? static_cast<double>(r.faults)
                      / static_cast<double>(none_faults)
                : 1.0;
            t.addRow({prefetchKindName(kind), std::to_string(degree),
                      std::to_string(r.faults), TextTable::num(vs, 3),
                      std::to_string(r.prefetches),
                      std::to_string(r.prefetchUseful),
                      std::to_string(r.prefetchWasted),
                      std::to_string(r.prefetchLate),
                      TextTable::num(100.0 * r.prefetchAccuracy(), 1) + "%"});
            if (kind == PrefetchKind::None)
                break; // degree is meaningless for demand paging
        }
    }
    t.print();
    return 0;
}
