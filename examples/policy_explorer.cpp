/**
 * @file
 * Policy explorer: build one of the six synthetic access-pattern types of
 * Fig. 2 from command-line parameters and compare every eviction policy
 * on it, functionally and with timing.
 *
 *   ./policy_explorer [TYPE] [PAGES] [PASSES] [OVERSUB] [SEED]
 *
 *   TYPE    pattern type I..VI (default II)
 *   PAGES   footprint in 4 KB pages (default 1024)
 *   PASSES  repetitions where the type uses them (default 4)
 *   OVERSUB fraction of the footprint that fits (default 0.75)
 *   SEED    RNG seed (default 1)
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "workload/patterns.hpp"

namespace {

hpe::Trace
buildPattern(const std::string &type, std::size_t pages, unsigned passes,
             std::uint64_t seed)
{
    using namespace hpe;
    Rng rng(seed);
    if (type == "I") {
        Trace t("I", "streaming", "synthetic", PatternType::I);
        patterns::stream(t, 0, pages, 1);
        return t;
    }
    if (type == "II") {
        Trace t("II", "thrashing", "synthetic", PatternType::II);
        patterns::thrash(t, 0, pages, passes);
        return t;
    }
    if (type == "III") {
        Trace t("III", "part repetitive", "synthetic", PatternType::III);
        patterns::partRepetitiveBlocks(t, 0, pages, 16, 0.3, 1, rng);
        return t;
    }
    if (type == "IV") {
        Trace t("IV", "most repetitive", "synthetic", PatternType::IV);
        patterns::partRepetitivePages(t, 0, pages, 0.8, 3, 32, rng);
        return t;
    }
    if (type == "V") {
        Trace t("V", "repetitive thrashing", "synthetic", PatternType::V);
        for (unsigned n = 0; n < passes; ++n) {
            t.beginKernel();
            patterns::partRepetitivePages(t, 0, pages, 0.8, 2, 32, rng);
        }
        return t;
    }
    if (type == "VI") {
        Trace t("VI", "region moving", "synthetic", PatternType::VI);
        patterns::regionMoving(t, 0, pages, 8, passes, 1);
        return t;
    }
    hpe::fatal("unknown pattern type '{}' (use I..VI)", type);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hpe;
    const std::string type = argc > 1 ? argv[1] : "II";
    const std::size_t pages = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1024;
    const unsigned passes = argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 4;
    const double oversub = argc > 4 ? std::atof(argv[4]) : 0.75;
    const std::uint64_t seed = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 1;

    const Trace trace = buildPattern(type, pages, passes, seed);
    std::cout << "pattern type " << type << " (" << trace.application()
              << "), " << trace.footprintPages() << " pages, " << trace.size()
              << " visits, " << trace.kernelCount() << " kernels, memory "
              << framesFor(trace, oversub) << " frames\n\n";

    RunConfig cfg;
    cfg.oversub = oversub;
    cfg.seed = seed;

    TextTable t({"policy", "faults", "evictions", "fault rate", "IPC",
                 "IPC vs LRU"});
    double lru_ipc = 0.0;
    for (PolicyKind kind : extendedPolicyKinds()) {
        const auto f = runFunctional(trace, kind, cfg);
        const auto timing = runTiming(trace, kind, cfg);
        if (kind == PolicyKind::Lru)
            lru_ipc = timing.ipc;
        t.addRow({policyKindName(kind), std::to_string(f.faults),
                  std::to_string(f.evictions),
                  TextTable::num(f.faultRate(), 3),
                  TextTable::num(timing.ipc, 4),
                  TextTable::num(lru_ipc > 0 ? timing.ipc / lru_ipc : 1.0, 2)});
    }
    t.print();
    return 0;
}
