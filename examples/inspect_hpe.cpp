/**
 * @file
 * HPE introspection: run one application under HPE (functional and
 * timing) and dump the policy's internal decisions — classification
 * ratios, the adjustment timeline (strategy switches and search-point
 * jumps), page-set divisions, HIR statistics, and search overhead.
 *
 *   ./inspect_hpe [APP] [OVERSUB] [SEED]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "sim/experiment.hpp"
#include "workload/apps.hpp"

namespace {

void
report(const char *mode, const hpe::InspectableRun &run, std::uint64_t faults)
{
    using namespace hpe;
    HpePolicy *policy = run.hpe();
    std::cout << mode << ": " << faults << " faults\n";

    const auto &cls = policy->classification();
    if (!cls) {
        std::cout << "  memory never filled: no classification ran\n";
        return;
    }
    std::cout << "  classification: " << categoryName(cls->category)
              << " (ratio1 " << cls->ratio1 << ", ratio2 " << cls->ratio2
              << ", old partition " << cls->oldPartitionSets << " sets)\n";

    std::cout << "  adjustment timeline:";
    for (const AdjustmentEvent &ev : policy->adjustment().timeline()) {
        std::cout << " [fault " << ev.faultNumber << ": "
                  << strategyName(ev.strategy);
        if (ev.searchOffset > 0)
            std::cout << " +" << ev.searchOffset;
        std::cout << "]";
    }
    std::cout << "\n";

    const auto &search = run.stats->findDistribution("hpe.searchComparisons");
    std::cout << "  MRU-C searches: " << search.count() << " (mean "
              << search.mean() << " comparisons)\n";
    std::cout << "  page-set divisions: "
              << run.stats->findCounter("hpe.chain.divisions").value()
              << ", wrong evictions: "
              << run.stats->findCounter("hpe.adjust.wrongEvictions").value()
              << "\n";
    const auto &flushes = run.stats->findDistribution("hpe.hir.entriesPerFlush");
    std::cout << "  HIR: "
              << run.stats->findCounter("hpe.hir.hitsRecorded").value()
              << " hits recorded, " << flushes.count() << " flushes (mean "
              << flushes.mean() << " entries), "
              << run.stats->findCounter("hpe.hir.conflicts").value()
              << " way-conflict drops\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hpe;
    const std::string app = argc > 1 ? argv[1] : "BFS";
    const double oversub = argc > 2 ? std::atof(argv[2]) : 0.75;
    const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

    const Trace trace = buildApp(app, 1.0, seed);
    std::cout << "HPE internals for " << trace.abbr() << " ("
              << trace.application() << ", pattern type "
              << patternName(trace.pattern()) << ") at " << oversub * 100
              << "% oversubscription\n\n";

    RunConfig cfg;
    cfg.oversub = oversub;
    cfg.seed = seed;

    const auto functional = runFunctionalInspect(trace, PolicyKind::Hpe, cfg);
    report("functional", functional, functional.paging.faults);
    std::cout << "\n";
    const auto timing = runTimingInspect(trace, PolicyKind::Hpe, cfg);
    report("timing", timing, timing.timing.faults);
    return 0;
}
