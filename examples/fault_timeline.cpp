/**
 * @file
 * Fault timeline: replay one application functionally under several
 * policies and chart the fault rate over time as an ASCII strip — the
 * quickest way to *see* thrashing, working-set capture, and the moment
 * HPE's classification/adjustment kicks in.
 *
 *   ./fault_timeline [APP] [OVERSUB] [BUCKETS]
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "hpe.hpp"

namespace {

/** Map a fault rate in [0,1] to a density glyph. */
char
glyph(double rate)
{
    static const char *ramp = " .:-=+*#%@";
    const int idx = static_cast<int>(rate * 9.999);
    return ramp[idx < 0 ? 0 : (idx > 9 ? 9 : idx)];
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hpe;
    const std::string app = argc > 1 ? argv[1] : "BFS";
    const double oversub = argc > 2 ? std::atof(argv[2]) : 0.75;
    const std::size_t buckets =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 64;

    const Trace trace = buildApp(app);
    const std::size_t frames = framesFor(trace, oversub);
    std::cout << "fault-rate timeline for " << trace.abbr() << " ("
              << trace.footprintPages() << " pages, " << frames
              << " frames, " << trace.size() << " visits; each column = "
              << trace.size() / buckets << " visits)\n"
              << "ramp: ' '=0% ... '@'=100% of the bucket's visits fault\n\n";

    for (PolicyKind kind : {PolicyKind::Lru, PolicyKind::Rrip,
                            PolicyKind::ClockPro, PolicyKind::Hpe,
                            PolicyKind::Ideal}) {
        StatRegistry stats;
        auto policy = makePolicy(kind, trace, stats);
        UvmMemoryManager uvm(frames, *policy, stats, "uvm");

        // Replay, sampling faults per bucket of visits.
        std::vector<double> rate(buckets, 0.0);
        const std::size_t per_bucket =
            (trace.size() + buckets - 1) / buckets;
        std::uint64_t last_faults = 0;
        for (std::size_t i = 0; i < trace.size(); ++i) {
            const PageRef &ref = trace.refs()[i];
            if (uvm.resident(ref.page))
                uvm.recordHit(ref.page);
            else
                uvm.handleFault(ref.page);
            if ((i + 1) % per_bucket == 0 || i + 1 == trace.size()) {
                const std::size_t bucket = i / per_bucket;
                rate[bucket] =
                    static_cast<double>(uvm.faults() - last_faults)
                    / static_cast<double>(per_bucket);
                last_faults = uvm.faults();
            }
        }

        std::string strip;
        for (double r : rate)
            strip += glyph(r);
        std::cout.width(10);
        std::cout << std::left << policy->name() << "|" << strip << "| "
                  << uvm.faults() << " faults\n";
    }
    return 0;
}
