/**
 * @file
 * §V-B sensitivity — page-walk latency of 8 versus 20 cycles for LRU and
 * HPE (result "not shown" in the paper due to space; the finding is that
 * the difference is minimal).
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace hpe;
    const auto opt = bench::parseOptions(argc, argv);
    bench::banner("Sensitivity: page walk latency 8 vs 20 cycles", opt);

    struct AppResult
    {
        double lru8, lru20, hpe8, hpe20;
    };
    const auto results =
        bench::forAllApps(opt, [&](const std::string &app) {
            const Trace trace = buildApp(app, opt.scale, opt.seed);
            RunConfig fast, slow;
            fast.oversub = slow.oversub = 0.75;
            fast.seed = slow.seed = opt.seed;
            fast.gpu.walkLatency = 8;
            slow.gpu.walkLatency = 20;
            return AppResult{
                runTiming(trace, PolicyKind::Lru, fast).ipc,
                runTiming(trace, PolicyKind::Lru, slow).ipc,
                runTiming(trace, PolicyKind::Hpe, fast).ipc,
                runTiming(trace, PolicyKind::Hpe, slow).ipc};
        });

    TextTable t({"app", "LRU IPC (8)", "LRU IPC (20)", "LRU delta %",
                 "HPE IPC (8)", "HPE IPC (20)", "HPE delta %"});
    std::vector<double> lru_delta, hpe_delta;
    const auto apps = bench::allApps();
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const AppResult &r = results[i];
        std::vector<std::string> row{apps[i]};
        for (PolicyKind kind : {PolicyKind::Lru, PolicyKind::Hpe}) {
            const double a = kind == PolicyKind::Lru ? r.lru8 : r.hpe8;
            const double b = kind == PolicyKind::Lru ? r.lru20 : r.hpe20;
            const double delta = 100.0 * (b - a) / a;
            (kind == PolicyKind::Lru ? lru_delta : hpe_delta).push_back(delta);
            row.push_back(TextTable::num(a, 4));
            row.push_back(TextTable::num(b, 4));
            row.push_back(TextTable::num(delta, 2));
        }
        t.addRow(row);
    }
    t.print();
    std::cout << "\nmean delta: LRU " << TextTable::num(bench::mean(lru_delta), 2)
              << "%, HPE " << TextTable::num(bench::mean(hpe_delta), 2)
              << "%  (paper: minimal difference)\n";
    return 0;
}
