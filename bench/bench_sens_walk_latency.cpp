/**
 * @file
 * §V-B sensitivity — page-walk latency of 8 versus 20 cycles for LRU and
 * HPE (result "not shown" in the paper due to space; the finding is that
 * the difference is minimal).
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace hpe;
    const auto opt = bench::parseOptions(argc, argv);
    bench::banner("Sensitivity: page walk latency 8 vs 20 cycles", opt);

    TextTable t({"app", "LRU IPC (8)", "LRU IPC (20)", "LRU delta %",
                 "HPE IPC (8)", "HPE IPC (20)", "HPE delta %"});
    std::vector<double> lru_delta, hpe_delta;
    for (const std::string &app : bench::allApps()) {
        const Trace trace = buildApp(app, opt.scale, opt.seed);
        std::vector<std::string> row{app};
        for (PolicyKind kind : {PolicyKind::Lru, PolicyKind::Hpe}) {
            RunConfig fast, slow;
            fast.oversub = slow.oversub = 0.75;
            fast.seed = slow.seed = opt.seed;
            fast.gpu.walkLatency = 8;
            slow.gpu.walkLatency = 20;
            const auto a = runTiming(trace, kind, fast);
            const auto b = runTiming(trace, kind, slow);
            const double delta = 100.0 * (b.ipc - a.ipc) / a.ipc;
            (kind == PolicyKind::Lru ? lru_delta : hpe_delta).push_back(delta);
            row.push_back(TextTable::num(a.ipc, 4));
            row.push_back(TextTable::num(b.ipc, 4));
            row.push_back(TextTable::num(delta, 2));
        }
        t.addRow(row);
    }
    t.print();
    std::cout << "\nmean delta: LRU " << TextTable::num(bench::mean(lru_delta), 2)
              << "%, HPE " << TextTable::num(bench::mean(hpe_delta), 2)
              << "%  (paper: minimal difference)\n";
    return 0;
}
