/**
 * @file
 * Fig. 14 — average number of chain comparisons per MRU-C victim search,
 * per application and oversubscription rate.  Applications that use LRU
 * for their entire execution are omitted, as in the paper.
 *
 * Paper shape target: typically below 50 comparisons, with outliers for
 * the irregular#2 switchers (BFS, HIS).
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace hpe;
    const auto opt = bench::parseOptions(argc, argv);
    bench::banner("Fig. 14: average MRU-C search overhead (comparisons)", opt);

    TextTable t({"app", "rate", "searches", "mean comparisons",
                 "max comparisons"});
    for (const std::string &app : bench::allApps()) {
        for (double rate : {0.75, 0.50}) {
            const Trace trace = buildApp(app, opt.scale, opt.seed);
            RunConfig cfg;
            cfg.oversub = rate;
            cfg.seed = opt.seed;
            const auto run = runFunctionalInspect(trace, PolicyKind::Hpe, cfg);
            const auto &d =
                run.stats->findDistribution("hpe.searchComparisons");
            if (d.count() == 0)
                continue; // LRU for the entire execution (paper omits these)
            t.addRow({app, TextTable::num(rate * 100, 0) + "%",
                      std::to_string(d.count()), TextTable::num(d.mean(), 1),
                      TextTable::num(d.maximum(), 0)});
        }
    }
    t.print();
    std::cout << "\n(Paper: typically < 50 comparisons; ~300 comparisons "
                 "cost 19.92% of the 20 us fault penalty.)\n";
    return 0;
}
