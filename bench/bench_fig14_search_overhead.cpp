/**
 * @file
 * Fig. 14 — average number of chain comparisons per MRU-C victim search,
 * per application and oversubscription rate.  Applications that use LRU
 * for their entire execution are omitted, as in the paper.
 *
 * Paper shape target: typically below 50 comparisons, with outliers for
 * the irregular#2 switchers (BFS, HIS).
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace hpe;
    const auto opt = bench::parseOptions(argc, argv);
    bench::banner("Fig. 14: average MRU-C search overhead (comparisons)", opt);

    struct AppRuns
    {
        InspectableRun r75, r50;
    };
    const auto runs = bench::forAllApps(opt, [&](const std::string &app) {
        const Trace trace = buildApp(app, opt.scale, opt.seed);
        RunConfig cfg;
        cfg.seed = opt.seed;
        AppRuns r;
        cfg.oversub = 0.75;
        r.r75 = runFunctionalInspect(trace, PolicyKind::Hpe, cfg);
        cfg.oversub = 0.50;
        r.r50 = runFunctionalInspect(trace, PolicyKind::Hpe, cfg);
        return r;
    });

    TextTable t({"app", "rate", "searches", "mean comparisons",
                 "max comparisons"});
    const auto apps = bench::allApps();
    for (std::size_t i = 0; i < apps.size(); ++i) {
        for (double rate : {0.75, 0.50}) {
            const InspectableRun &run =
                rate == 0.75 ? runs[i].r75 : runs[i].r50;
            const auto &d =
                run.stats->findDistribution("hpe.searchComparisons");
            if (d.count() == 0)
                continue; // LRU for the entire execution (paper omits these)
            t.addRow({apps[i], TextTable::num(rate * 100, 0) + "%",
                      std::to_string(d.count()), TextTable::num(d.mean(), 1),
                      TextTable::num(d.maximum(), 0)});
        }
    }
    t.print();
    std::cout << "\n(Paper: typically < 50 comparisons; ~300 comparisons "
                 "cost 19.92% of the 20 us fault penalty.)\n";
    return 0;
}
