/**
 * @file
 * Fig. 12 — HPE versus Random, RRIP, and CLOCK-Pro, normalized to the
 * Ideal policy: (a) timing IPC, (b) functional evictions; both
 * oversubscription rates, averaged per pattern type.
 *
 * Paper shape targets: HPE ahead of all three baselines on average
 * (1.16-1.27x at 75%), especially for types II and VI; at 75% HPE lands
 * within ~11% of Ideal IPC and ~18% more evictions.
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace hpe;
    const auto opt = bench::parseOptions(argc, argv);
    bench::banner("Fig. 12: policy comparison normalized to Ideal", opt);

    const std::vector<PolicyKind> kinds = {PolicyKind::Lru, PolicyKind::Random,
                                           PolicyKind::Rrip,
                                           PolicyKind::ClockPro,
                                           PolicyKind::Hpe};

    for (double rate : {0.75, 0.50}) {
        std::cout << "--- oversubscription " << rate * 100 << "% ---\n";
        struct AppNorm
        {
            std::vector<double> ipc, ev; // aligned with kinds
        };
        const auto norms =
            bench::forAllApps(opt, [&](const std::string &app) {
                const Trace trace = buildApp(app, opt.scale, opt.seed);
                RunConfig cfg;
                cfg.oversub = rate;
                cfg.seed = opt.seed;
                const auto ideal_t = runTiming(trace, PolicyKind::Ideal, cfg);
                const auto ideal_f =
                    runFunctional(trace, PolicyKind::Ideal, cfg);
                AppNorm n;
                for (PolicyKind kind : kinds) {
                    const auto rt = runTiming(trace, kind, cfg);
                    const auto rf = runFunctional(trace, kind, cfg);
                    n.ipc.push_back(rt.ipc / ideal_t.ipc);
                    n.ev.push_back(ideal_f.evictions > 0
                        ? static_cast<double>(rf.evictions)
                              / static_cast<double>(ideal_f.evictions)
                        : 1.0);
                }
                return n;
            });

        // per kind -> per app normalized values
        std::map<PolicyKind, std::map<std::string, double>> ipc_norm, ev_norm;
        const auto apps = bench::allApps();
        for (std::size_t i = 0; i < apps.size(); ++i) {
            for (std::size_t k = 0; k < kinds.size(); ++k) {
                ipc_norm[kinds[k]][apps[i]] = norms[i].ipc[k];
                ev_norm[kinds[k]][apps[i]] = norms[i].ev[k];
            }
        }

        TextTable ta({"pattern type", "LRU", "Random", "RRIP", "CLOCK-Pro",
                      "HPE"});
        std::cout << "(a) IPC normalized to Ideal (per-type average)\n";
        auto add_rows = [&](TextTable &t,
                            std::map<PolicyKind, std::map<std::string, double>>
                                &values) {
            std::map<PolicyKind, std::map<std::string, double>> by_type;
            for (PolicyKind kind : kinds)
                by_type[kind] = bench::averageByType(values[kind]);
            for (const std::string type : {"I", "II", "III", "IV", "V", "VI"}) {
                std::vector<std::string> row{"type " + type};
                for (PolicyKind kind : kinds)
                    row.push_back(TextTable::num(by_type[kind][type], 2));
                t.addRow(row);
            }
            std::vector<std::string> mean_row{"mean (all apps)"};
            for (PolicyKind kind : kinds) {
                std::vector<double> all;
                for (auto &[app, v] : values[kind])
                    all.push_back(v);
                mean_row.push_back(TextTable::num(bench::mean(all), 2));
            }
            t.addRow(mean_row);
        };
        add_rows(ta, ipc_norm);
        ta.print();

        std::cout << "\n(b) evictions normalized to Ideal (per-type average)\n";
        TextTable tb({"pattern type", "LRU", "Random", "RRIP", "CLOCK-Pro",
                      "HPE"});
        add_rows(tb, ev_norm);
        tb.print();
        std::cout << "\n";
    }
    std::cout << "(Paper at 75%: HPE within 11% of Ideal IPC, 18% more "
                 "evictions; 1.16x/1.27x/1.2x over Random/RRIP/CLOCK-Pro.)\n";
    return 0;
}
