/**
 * @file
 * §IV-B — HIR storage cost compared to a plain address buffer that
 * records every page-walk-hit address in order.  The paper reports HIR
 * reducing storage by 63% (75% rate) and 53% (50% rate) on average, and
 * a total HIR cost of 10 KB (4.2% of the SMs' L1 data capacity).
 */

#include "bench_common.hpp"
#include "core/hir_cache.hpp"

int
main(int argc, char **argv)
{
    using namespace hpe;
    const auto opt = bench::parseOptions(argc, argv);
    bench::banner("HIR storage cost vs plain address buffer", opt);

    {
        StatRegistry stats;
        const HirCache hir(HpeConfig{}, stats, "hir");
        const HpeConfig cfg{};
        std::cout << "HIR geometry: " << cfg.hirEntries << " entries x "
                  << hir.recordBytes() << " B = "
                  << cfg.hirEntries * hir.recordBytes() / 1024
                  << " KB on the GPU (paper: 10 KB, 4.2% of 240 KB L1D)\n\n";
    }

    struct AppRuns
    {
        InspectableRun r75, r50;
    };
    const auto runs = bench::forAllApps(opt, [&](const std::string &app) {
        const Trace trace = buildApp(app, opt.scale, opt.seed);
        RunConfig cfg;
        cfg.seed = opt.seed;
        AppRuns r;
        cfg.oversub = 0.75;
        r.r75 = runTimingInspect(trace, PolicyKind::Hpe, cfg);
        cfg.oversub = 0.50;
        r.r50 = runTimingInspect(trace, PolicyKind::Hpe, cfg);
        return r;
    });

    TextTable t({"app", "rate", "walk hits", "addr-buffer bytes",
                 "HIR bytes", "saving %"});
    std::vector<double> saving75, saving50;
    const auto apps = bench::allApps();
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const std::string &app = apps[i];
        for (double rate : {0.75, 0.50}) {
            const InspectableRun &run =
                rate == 0.75 ? runs[i].r75 : runs[i].r50;
            const std::uint64_t hits =
                run.stats->findCounter("hpe.hir.hitsRecorded").value();
            // A plain buffer stores one 8 B address per walk hit.
            const std::uint64_t addr_bytes = hits * 8;
            const std::uint64_t hir_bytes =
                run.stats->findCounter("pcie.bytes").value();
            if (addr_bytes == 0)
                continue; // no walk hits at this scale: nothing to compare
            const double saving = 100.0
                * (static_cast<double>(addr_bytes)
                   - static_cast<double>(hir_bytes))
                / static_cast<double>(addr_bytes);
            (rate == 0.75 ? saving75 : saving50).push_back(saving);
            t.addRow({app, TextTable::num(rate * 100, 0) + "%",
                      std::to_string(hits), std::to_string(addr_bytes),
                      std::to_string(hir_bytes), TextTable::num(saving, 1)});
        }
    }
    t.print();
    std::cout << "\nmean saving: " << TextTable::num(bench::mean(saving75), 1)
              << "% at 75%, " << TextTable::num(bench::mean(saving50), 1)
              << "% at 50%  (paper: 63% and 53%)\n";
    return 0;
}
