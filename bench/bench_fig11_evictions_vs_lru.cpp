/**
 * @file
 * Fig. 11 — HPE's evictions compared to LRU at 75% and 50%
 * oversubscription (functional simulator, exact counts).
 *
 * Paper shape targets: similar counts for types I and VI, far fewer for
 * type II; on average HPE evicts 18% (75%) and 12% (50%) fewer pages.
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace hpe;
    const auto opt = bench::parseOptions(argc, argv);
    bench::banner("Fig. 11: HPE evictions vs LRU", opt);

    TextTable t({"type", "app", "LRU ev 75%", "HPE ev 75%", "HPE/LRU 75%",
                 "LRU ev 50%", "HPE ev 50%", "HPE/LRU 50%"});
    std::vector<double> r75, r50;
    for (const std::string &app : bench::allApps()) {
        const Trace trace = buildApp(app, opt.scale, opt.seed);
        std::vector<std::string> row{bench::typeOf(app), app};
        for (double rate : {0.75, 0.50}) {
            RunConfig cfg;
            cfg.oversub = rate;
            cfg.seed = opt.seed;
            const auto lru = runFunctional(trace, PolicyKind::Lru, cfg);
            const auto hpe = runFunctional(trace, PolicyKind::Hpe, cfg);
            const double ratio = lru.evictions > 0
                ? static_cast<double>(hpe.evictions)
                      / static_cast<double>(lru.evictions)
                : 1.0;
            (rate == 0.75 ? r75 : r50).push_back(ratio);
            row.push_back(std::to_string(lru.evictions));
            row.push_back(std::to_string(hpe.evictions));
            row.push_back(TextTable::num(ratio, 2));
        }
        t.addRow(row);
    }
    t.addRow({"", "mean", "", "", TextTable::num(bench::mean(r75), 2), "", "",
              TextTable::num(bench::mean(r50), 2)});
    t.print();
    std::cout << "\n(Paper: HPE evicts 18% fewer pages at 75% and 12% fewer "
                 "at 50% on average.)\n";
    return 0;
}
