/**
 * @file
 * Fig. 11 — HPE's evictions compared to LRU at 75% and 50%
 * oversubscription (functional simulator, exact counts).
 *
 * Paper shape targets: similar counts for types I and VI, far fewer for
 * type II; on average HPE evicts 18% (75%) and 12% (50%) fewer pages.
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace hpe;
    const auto opt = bench::parseOptions(argc, argv);
    bench::banner("Fig. 11: HPE evictions vs LRU", opt);

    struct AppResult
    {
        std::uint64_t lru75, hpe75, lru50, hpe50;
    };
    const auto results =
        bench::forAllApps(opt, [&](const std::string &app) {
            const Trace trace = buildApp(app, opt.scale, opt.seed);
            RunConfig cfg;
            cfg.seed = opt.seed;
            cfg.oversub = 0.75;
            const auto lru75 = runFunctional(trace, PolicyKind::Lru, cfg);
            const auto hpe75 = runFunctional(trace, PolicyKind::Hpe, cfg);
            cfg.oversub = 0.50;
            const auto lru50 = runFunctional(trace, PolicyKind::Lru, cfg);
            const auto hpe50 = runFunctional(trace, PolicyKind::Hpe, cfg);
            return AppResult{lru75.evictions, hpe75.evictions, lru50.evictions,
                             hpe50.evictions};
        });

    TextTable t({"type", "app", "LRU ev 75%", "HPE ev 75%", "HPE/LRU 75%",
                 "LRU ev 50%", "HPE ev 50%", "HPE/LRU 50%"});
    std::vector<double> r75, r50;
    const auto apps = bench::allApps();
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const AppResult &r = results[i];
        std::vector<std::string> row{bench::typeOf(apps[i]), apps[i]};
        for (double rate : {0.75, 0.50}) {
            const std::uint64_t lru = rate == 0.75 ? r.lru75 : r.lru50;
            const std::uint64_t hpe = rate == 0.75 ? r.hpe75 : r.hpe50;
            const double ratio = lru > 0
                ? static_cast<double>(hpe) / static_cast<double>(lru)
                : 1.0;
            (rate == 0.75 ? r75 : r50).push_back(ratio);
            row.push_back(std::to_string(lru));
            row.push_back(std::to_string(hpe));
            row.push_back(TextTable::num(ratio, 2));
        }
        t.addRow(row);
    }
    t.addRow({"", "mean", "", "", TextTable::num(bench::mean(r75), 2), "", "",
              TextTable::num(bench::mean(r50), 2)});
    t.print();
    std::cout << "\n(Paper: HPE evicts 18% fewer pages at 75% and 12% fewer "
                 "at 50% on average.)\n";
    return 0;
}
