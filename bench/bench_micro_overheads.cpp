/**
 * @file
 * §V-C overhead microbenchmarks (google-benchmark): wall-clock costs of
 * the operations the paper measures on the host —
 *
 *  - MRU-C list search (the paper times 300 comparisons in a list);
 *  - updating 150 records in a hashmap-backed chain (the paper's 16.1 us
 *    worst case for the HIR-batch chain update);
 *  - the one-shot classification traversal (the paper's 16.7 us on KMN);
 *  - HIR hit recording and flush;
 *  - per-policy steady-state paging throughput.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/classifier.hpp"
#include "core/hir_cache.hpp"
#include "core/hpe_policy.hpp"
#include "core/page_set_chain.hpp"
#include "sim/paging_simulator.hpp"
#include "sim/policy_factory.hpp"
#include "workload/apps.hpp"

namespace {

using namespace hpe;

/** Chain search: walk N entries comparing counters (the Fig. 14 op). */
void
BM_ChainSearch(benchmark::State &state)
{
    StatRegistry stats;
    HpeConfig cfg;
    PageSetChain chain(cfg, stats, "chain");
    const auto n = static_cast<std::size_t>(state.range(0));
    for (std::size_t i = 0; i < n; ++i)
        chain.touch(i * 16, 32, true); // counter 32: never "qualified"
    chain.endInterval();
    chain.endInterval(); // everything old

    for (auto _ : state) {
        auto &old_list = chain.partition(Partition::Old);
        std::uint64_t comparisons = 0;
        for (ChainEntry *e = &old_list.back(); e != nullptr;
             e = old_list.prev(*e)) {
            ++comparisons;
            benchmark::DoNotOptimize(e->counter);
        }
        benchmark::DoNotOptimize(comparisons);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations())
                            * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ChainSearch)->Arg(50)->Arg(300)->Arg(1000);

/** Chain update from one HIR batch (the paper's 150-record hashmap op). */
void
BM_ChainUpdateBatch(benchmark::State &state)
{
    const auto records = static_cast<std::size_t>(state.range(0));
    StatRegistry stats;
    HpeConfig cfg;
    PageSetChain chain(cfg, stats, "chain");
    // Chain pre-populated with 200 sets (paper uses length 200 > MVT's 180).
    for (std::size_t i = 0; i < 200; ++i)
        chain.touch(i * 16, 1, true);

    std::uint64_t page = 0;
    for (auto _ : state) {
        for (std::size_t r = 0; r < records; ++r)
            chain.touch((page + r * 16) % (200 * 16), 1, false);
        page += 7;
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations())
                            * static_cast<std::int64_t>(records));
}
BENCHMARK(BM_ChainUpdateBatch)->Arg(10)->Arg(150);

/** One-shot statistics classification (the paper's 16.7 us on KMN). */
void
BM_Classification(benchmark::State &state)
{
    StatRegistry stats;
    HpeConfig cfg;
    PageSetChain chain(cfg, stats, "chain");
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(1);
    for (std::size_t i = 0; i < n; ++i)
        chain.touch(i * 16, 1 + static_cast<std::uint32_t>(rng.below(63)),
                    true);
    for (auto _ : state) {
        auto result = classify(cfg, chain);
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations())
                            * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Classification)->Arg(256)->Arg(4096);

/** HIR hit recording (off the walk critical path, but still cheap). */
void
BM_HirRecordHit(benchmark::State &state)
{
    StatRegistry stats;
    HirCache hir(HpeConfig{}, stats, "hir");
    PageId page = 0;
    for (auto _ : state) {
        hir.recordHit(page);
        page = (page + 17) % 16384;
        if ((page & 1023) == 0) {
            auto records = hir.flush();
            benchmark::DoNotOptimize(records);
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HirRecordHit);

/** End-to-end functional paging throughput per policy. */
void
BM_PagingThroughput(benchmark::State &state)
{
    const auto kind = static_cast<PolicyKind>(state.range(0));
    const Trace trace = buildApp("HSD", 0.5);
    for (auto _ : state) {
        StatRegistry stats;
        auto policy = makePolicy(kind, trace, stats);
        auto result = runPaging(trace, *policy,
                                trace.footprintPages() * 3 / 4, stats);
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations())
                            * static_cast<std::int64_t>(trace.size()));
    state.SetLabel(policyKindName(kind));
}
BENCHMARK(BM_PagingThroughput)
    ->DenseRange(static_cast<int>(PolicyKind::Lru),
                 static_cast<int>(PolicyKind::Hpe));

} // namespace

BENCHMARK_MAIN();
