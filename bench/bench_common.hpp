/**
 * @file
 * Shared helpers for the paper-reproduction benchmark harness.
 *
 * Every bench binary regenerates one table or figure of the paper.  The
 * harness accepts the arguments common to all binaries:
 *
 *   argv[1]     footprint scale factor (default 1.0)
 *   argv[2]     base RNG seed (default 1)
 *   --jobs N    parallelism for per-app sweeps (default: HPE_JOBS env,
 *               else all hardware threads); results are reduced in app
 *               order, so output is byte-identical for every N.
 *
 * Arguments are parsed strictly: trailing garbage ("1.5x") and unknown
 * flags abort with a usage line instead of being silently truncated.
 */

#pragma once

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <type_traits>
#include <vector>

#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"
#include "workload/apps.hpp"

namespace hpe::bench {

/** Common CLI options. */
struct Options
{
    double scale = 1.0;
    std::uint64_t seed = 1;
    /** Sweep parallelism; 0 resolves via resolveJobs() (env/hardware). */
    unsigned jobs = 0;
};

[[noreturn]] inline void
usage(const char *prog)
{
    std::cerr << "usage: " << prog << " [scale] [seed] [--jobs N]\n"
              << "  scale    footprint scale factor > 0 (default 1.0)\n"
              << "  seed     base RNG seed (default 1)\n"
              << "  --jobs   sweep parallelism (default: HPE_JOBS env, else"
                 " hardware threads);\n"
              << "           output is identical for every value\n";
    std::exit(2);
}

inline Options
parseOptions(int argc, char **argv)
{
    Options opt;
    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        char *end = nullptr;
        if (arg == "--jobs") {
            if (++i >= argc) {
                std::cerr << argv[0] << ": --jobs requires a value\n";
                usage(argv[0]);
            }
            const unsigned long v = std::strtoul(argv[i], &end, 10);
            if (end == argv[i] || *end != '\0' || v == 0) {
                std::cerr << argv[0] << ": bad --jobs value '" << argv[i]
                          << "'\n";
                usage(argv[0]);
            }
            opt.jobs = static_cast<unsigned>(v);
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
        } else if (positional == 0) {
            opt.scale = std::strtod(arg.c_str(), &end);
            if (end == arg.c_str() || *end != '\0' || opt.scale <= 0) {
                std::cerr << argv[0] << ": bad scale factor '" << arg << "'\n";
                usage(argv[0]);
            }
            ++positional;
        } else if (positional == 1) {
            opt.seed = std::strtoull(arg.c_str(), &end, 10);
            if (end == arg.c_str() || *end != '\0') {
                std::cerr << argv[0] << ": bad seed '" << arg << "'\n";
                usage(argv[0]);
            }
            ++positional;
        } else {
            std::cerr << argv[0] << ": unexpected argument '" << arg << "'\n";
            usage(argv[0]);
        }
    }
    return opt;
}

/** All 23 application abbreviations in Table II order. */
inline std::vector<std::string>
allApps()
{
    std::vector<std::string> apps;
    for (const AppSpec &s : appSpecs())
        apps.push_back(s.abbr);
    return apps;
}

/**
 * Evaluate fn(abbr) for every Table II app across a SweepRunner and
 * return the results in Table II order.  fn runs concurrently (opt.jobs
 * ways), so it must only build traces and run simulations — printing
 * belongs in the serial reduction over the returned vector, which is
 * what keeps every table byte-identical to a --jobs 1 run.
 */
template <typename Fn>
auto
forAllApps(const Options &opt, Fn &&fn)
    -> std::vector<std::invoke_result_t<Fn &, const std::string &>>
{
    SweepRunner runner(opt.jobs);
    return runner.mapItems(allApps(), fn);
}

/** forAllApps() over an explicit app list (results align with it). */
template <typename Fn>
auto
forApps(const Options &opt, const std::vector<std::string> &apps, Fn &&fn)
    -> std::vector<std::invoke_result_t<Fn &, const std::string &>>
{
    SweepRunner runner(opt.jobs);
    return runner.mapItems(apps, fn);
}

/** The pattern-type group label of an app ("I".."VI"). */
inline std::string
typeOf(const std::string &abbr)
{
    return patternName(appSpec(abbr).type);
}

/** Geometric mean of a vector of positive ratios. */
inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

/** Arithmetic mean. */
inline double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

/** Per-pattern-type averages of per-app values. */
inline std::map<std::string, double>
averageByType(const std::map<std::string, double> &per_app)
{
    std::map<std::string, std::vector<double>> groups;
    for (const auto &[app, v] : per_app)
        groups[typeOf(app)].push_back(v);
    std::map<std::string, double> out;
    for (const auto &[type, vs] : groups)
        out[type] = mean(vs);
    return out;
}

/** Print a standard experiment banner (never mentions jobs: output must
 *  not depend on the parallelism degree). */
inline void
banner(const std::string &what, const Options &opt)
{
    std::cout << "== " << what << " ==\n"
              << "(scale " << opt.scale << ", seed " << opt.seed
              << "; shapes, not absolute numbers, are the reproduction "
                 "target)\n\n";
}

} // namespace hpe::bench
