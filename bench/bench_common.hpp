/**
 * @file
 * Shared helpers for the paper-reproduction benchmark harness.
 *
 * Every bench binary regenerates one table or figure of the paper.  The
 * harness accepts two optional arguments common to all binaries:
 *
 *   argv[1]  footprint scale factor (default 1.0)
 *   argv[2]  base RNG seed (default 1)
 */

#pragma once

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "workload/apps.hpp"

namespace hpe::bench {

/** Common CLI options. */
struct Options
{
    double scale = 1.0;
    std::uint64_t seed = 1;
};

inline Options
parseOptions(int argc, char **argv)
{
    Options opt;
    if (argc > 1)
        opt.scale = std::atof(argv[1]);
    if (argc > 2)
        opt.seed = std::strtoull(argv[2], nullptr, 10);
    if (opt.scale <= 0)
        fatal("bad scale factor");
    return opt;
}

/** All 23 application abbreviations in Table II order. */
inline std::vector<std::string>
allApps()
{
    std::vector<std::string> apps;
    for (const AppSpec &s : appSpecs())
        apps.push_back(s.abbr);
    return apps;
}

/** The pattern-type group label of an app ("I".."VI"). */
inline std::string
typeOf(const std::string &abbr)
{
    return patternName(appSpec(abbr).type);
}

/** Geometric mean of a vector of positive ratios. */
inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

/** Arithmetic mean. */
inline double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

/** Per-pattern-type averages of per-app values. */
inline std::map<std::string, double>
averageByType(const std::map<std::string, double> &per_app)
{
    std::map<std::string, std::vector<double>> groups;
    for (const auto &[app, v] : per_app)
        groups[typeOf(app)].push_back(v);
    std::map<std::string, double> out;
    for (const auto &[type, vs] : groups)
        out[type] = mean(vs);
    return out;
}

/** Print a standard experiment banner. */
inline void
banner(const std::string &what, const Options &opt)
{
    std::cout << "== " << what << " ==\n"
              << "(scale " << opt.scale << ", seed " << opt.seed
              << "; shapes, not absolute numbers, are the reproduction "
                 "target)\n\n";
}

} // namespace hpe::bench
