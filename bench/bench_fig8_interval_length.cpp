/**
 * @file
 * Fig. 8 — HPE's sensitivity to interval length {32, 64, 128} with page
 * set size 16, reported as average timing IPC per pattern type
 * normalized to length 32.
 *
 * Methodology as in Fig. 7 (§V-A): adjustment off, manual strategy,
 * idealized hit channel.
 *
 * Paper shape target: differences within ~12%; 64 and 128 slightly ahead
 * of 32 on average, 128 unstable for type II.
 */

#include "bench_common.hpp"

namespace {

hpe::ForcedStrategy
manualStrategy(const std::string &app)
{
    using hpe::ForcedStrategy;
    for (const char *lru_app : {"KMN", "NW", "B+T", "HYB", "SPV", "MVT", "HWL"})
        if (app == lru_app)
            return ForcedStrategy::Lru;
    return ForcedStrategy::MruC;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hpe;
    const auto opt = bench::parseOptions(argc, argv);
    bench::banner(
        "Fig. 8: HPE sensitivity to interval length (IPC, norm. to 32)", opt);

    const std::vector<std::uint32_t> intervals = {32, 64, 128};
    const auto results =
        bench::forAllApps(opt, [&](const std::string &app) {
            const Trace trace = buildApp(app, opt.scale, opt.seed);
            std::vector<double> per_interval;
            for (std::uint32_t interval : intervals) {
                RunConfig cfg;
                cfg.oversub = 0.75;
                cfg.seed = opt.seed;
                cfg.hpe.intervalLength = interval;
                cfg.hpe.fifoDepth = 2 * interval;
                cfg.hpe.hitChannel = HitChannel::Direct;
                cfg.hpe.dynamicAdjustment = false;
                cfg.hpe.forcedStrategy = manualStrategy(app);
                per_interval.push_back(
                    runTiming(trace, PolicyKind::Hpe, cfg).ipc);
            }
            return per_interval;
        });

    std::map<std::string, std::map<std::uint32_t, std::vector<double>>> ipc;
    const auto apps = bench::allApps();
    for (std::size_t i = 0; i < apps.size(); ++i)
        for (std::size_t s = 0; s < intervals.size(); ++s)
            ipc[bench::typeOf(apps[i])][intervals[s]].push_back(results[i][s]);

    TextTable t({"pattern type", "interval 32", "interval 64", "interval 128"});
    for (auto &[type, by_len] : ipc) {
        const double base = bench::mean(by_len[32]);
        t.addRow({"type " + type, TextTable::num(1.0, 3),
                  TextTable::num(bench::mean(by_len[64]) / base, 3),
                  TextTable::num(bench::mean(by_len[128]) / base, 3)});
    }
    t.print();
    std::cout << "\n(The paper selects 64: 128 performs unstably for type II "
                 "workloads.)\n";
    return 0;
}
