/**
 * @file
 * Fig. 15 — average number of HIR entries transferred to the driver per
 * flush, per application (timing simulator: HIR sees TLB-filtered
 * page-walk hits).
 *
 * Paper shape target: fewer than ten entries for most applications, with
 * MVT the outlier (stride-4 access wastes entry space).
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace hpe;
    const auto opt = bench::parseOptions(argc, argv);
    bench::banner("Fig. 15: average HIR entries transferred per flush", opt);

    const auto runs = bench::forAllApps(opt, [&](const std::string &app) {
        const Trace trace = buildApp(app, opt.scale, opt.seed);
        RunConfig cfg;
        cfg.oversub = 0.75;
        cfg.seed = opt.seed;
        return runTimingInspect(trace, PolicyKind::Hpe, cfg);
    });

    TextTable t({"app", "flushes", "mean entries", "max entries",
                 "way-conflict drops", "bytes on PCIe", "mean chain length"});
    const auto apps = bench::allApps();
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const std::string &app = apps[i];
        const InspectableRun &run = runs[i];
        const auto &d = run.stats->findDistribution("hpe.hir.entriesPerFlush");
        t.addRow({app, std::to_string(d.count()),
                  TextTable::num(d.mean(), 1), TextTable::num(d.maximum(), 0),
                  std::to_string(
                      run.stats->findCounter("hpe.hir.conflicts").value()),
                  std::to_string(run.stats->findCounter("pcie.bytes").value()),
                  TextTable::num(
                      run.stats->findDistribution("hpe.chain.length").mean(),
                      0)});
    }
    t.print();
    std::cout << "\n(Paper: fewer than ten entries per transfer for most "
                 "applications, MVT the outlier at 139; §V-C reports MVT's "
                 "chain averaging 180 entries.)\n";
    return 0;
}
