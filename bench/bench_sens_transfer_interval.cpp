/**
 * @file
 * §V-A sensitivity — the interval at which HIR contents are transferred
 * to the GPU driver: every {1, 8, 16, 32, 64}th page fault.  The paper
 * found 16 the best trade-off (result not shown there).
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace hpe;
    const auto opt = bench::parseOptions(argc, argv);
    bench::banner("Sensitivity: HIR transfer interval", opt);

    const std::vector<std::uint32_t> intervals = {1, 8, 16, 32, 64};

    TextTable t({"transfer interval", "mean IPC (norm. to 16)",
                 "mean faults (norm. to 16)", "mean PCIe KB"});
    struct Cell
    {
        double ipc, faults, bytes;
    };
    const auto per_app =
        bench::forAllApps(opt, [&](const std::string &app) {
            const Trace trace = buildApp(app, opt.scale, opt.seed);
            std::vector<Cell> cells;
            for (std::uint32_t interval : intervals) {
                RunConfig cfg;
                cfg.oversub = 0.75;
                cfg.seed = opt.seed;
                cfg.hpe.transferInterval = interval;
                const auto run = runTimingInspect(trace, PolicyKind::Hpe, cfg);
                cells.push_back(Cell{
                    run.timing.ipc, static_cast<double>(run.timing.faults),
                    static_cast<double>(
                        run.stats->findCounter("pcie.bytes").value())});
            }
            return cells;
        });

    std::map<std::uint32_t, std::vector<double>> ipc, faults, bytes;
    for (const auto &cells : per_app) {
        for (std::size_t s = 0; s < intervals.size(); ++s) {
            ipc[intervals[s]].push_back(cells[s].ipc);
            faults[intervals[s]].push_back(cells[s].faults);
            bytes[intervals[s]].push_back(cells[s].bytes);
        }
    }
    const double ipc16 = bench::mean(ipc[16]);
    const double faults16 = bench::mean(faults[16]);
    for (std::uint32_t interval : intervals) {
        t.addRow({std::to_string(interval),
                  TextTable::num(bench::mean(ipc[interval]) / ipc16, 3),
                  TextTable::num(bench::mean(faults[interval]) / faults16, 3),
                  TextTable::num(bench::mean(bytes[interval]) / 1024.0, 1)});
    }
    t.print();
    std::cout << "\n(Paper: 16 makes the best trade-off between transfer "
                 "frequency and performance.)\n";
    return 0;
}
