/**
 * @file
 * §V-A sensitivity — the interval at which HIR contents are transferred
 * to the GPU driver: every {1, 8, 16, 32, 64}th page fault.  The paper
 * found 16 the best trade-off (result not shown there).
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace hpe;
    const auto opt = bench::parseOptions(argc, argv);
    bench::banner("Sensitivity: HIR transfer interval", opt);

    const std::vector<std::uint32_t> intervals = {1, 8, 16, 32, 64};

    TextTable t({"transfer interval", "mean IPC (norm. to 16)",
                 "mean faults (norm. to 16)", "mean PCIe KB"});
    std::map<std::uint32_t, std::vector<double>> ipc, faults, bytes;
    for (const std::string &app : bench::allApps()) {
        const Trace trace = buildApp(app, opt.scale, opt.seed);
        for (std::uint32_t interval : intervals) {
            RunConfig cfg;
            cfg.oversub = 0.75;
            cfg.seed = opt.seed;
            cfg.hpe.transferInterval = interval;
            const auto run = runTimingInspect(trace, PolicyKind::Hpe, cfg);
            ipc[interval].push_back(run.timing.ipc);
            faults[interval].push_back(static_cast<double>(run.timing.faults));
            bytes[interval].push_back(static_cast<double>(
                run.stats->findCounter("pcie.bytes").value()));
        }
    }
    const double ipc16 = bench::mean(ipc[16]);
    const double faults16 = bench::mean(faults[16]);
    for (std::uint32_t interval : intervals) {
        t.addRow({std::to_string(interval),
                  TextTable::num(bench::mean(ipc[interval]) / ipc16, 3),
                  TextTable::num(bench::mean(faults[interval]) / faults16, 3),
                  TextTable::num(bench::mean(bytes[interval]) / 1024.0, 1)});
    }
    t.print();
    std::cout << "\n(Paper: 16 makes the best trade-off between transfer "
                 "frequency and performance.)\n";
    return 0;
}
