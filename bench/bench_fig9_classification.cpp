/**
 * @file
 * Fig. 9 + Table III — ratio1 and ratio2 of each application at first
 * memory-full (75% oversubscription) and the resulting category.
 *
 * Paper shape targets: types I-III have small ratios (outliers KMN and
 * SAD with large ratio1); types IV-VI have large ratio1 or ratio2
 * (outlier SGM, classified regular).
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace hpe;
    const auto opt = bench::parseOptions(argc, argv);
    bench::banner("Fig. 9 / Table III: ratio1, ratio2 and classification", opt);

    std::cout << "Table III thresholds: regular (r1 <= "
              << HpeConfig{}.ratio1Threshold << ", r2 < "
              << HpeConfig{}.ratio2Threshold << "), irregular#1 (r1 <= "
              << HpeConfig{}.ratio1Threshold << ", r2 >= "
              << HpeConfig{}.ratio2Threshold << "), irregular#2 (r1 > "
              << HpeConfig{}.ratio1Threshold << ")\n\n";

    RunConfig cfg;
    cfg.oversub = 0.75;
    cfg.seed = opt.seed;

    const auto runs = bench::forAllApps(opt, [&](const std::string &app) {
        const Trace trace = buildApp(app, opt.scale, opt.seed);
        return runFunctionalInspect(trace, PolicyKind::Hpe, cfg);
    });

    TextTable t({"type", "app", "ratio1", "ratio2", "category",
                 "old partition sets"});
    const auto apps = bench::allApps();
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const std::string &app = apps[i];
        const auto &cls = runs[i].hpe()->classification();
        if (!cls) {
            t.addRow({bench::typeOf(app), app, "-", "-", "memory never full",
                      "-"});
            continue;
        }
        t.addRow({bench::typeOf(app), app, TextTable::num(cls->ratio1, 3),
                  TextTable::num(cls->ratio2, 3), categoryName(cls->category),
                  std::to_string(cls->oldPartitionSets)});
    }
    t.print();
    return 0;
}
