/**
 * @file
 * Fig. 7 — HPE's sensitivity to page-set size {8, 16, 32} with interval
 * length 64, reported as average timing IPC per pattern type normalized
 * to size 8.
 *
 * Methodology follows §V-A: dynamic adjustment off, eviction strategy
 * selected manually per application, and the idealized hit channel
 * (page-walk hit information delivered without HIR).
 *
 * Paper shape target: all three sizes within ~10% of each other.
 */

#include "bench_common.hpp"

namespace {

/** §V-C strategy each app settles on (used for manual selection). */
hpe::ForcedStrategy
manualStrategy(const std::string &app)
{
    using hpe::ForcedStrategy;
    for (const char *lru_app : {"KMN", "NW", "B+T", "HYB", "SPV", "MVT", "HWL"})
        if (app == lru_app)
            return ForcedStrategy::Lru;
    return ForcedStrategy::MruC;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hpe;
    const auto opt = bench::parseOptions(argc, argv);
    bench::banner("Fig. 7: HPE sensitivity to page set size (IPC, norm. to 8)",
                  opt);

    const std::vector<std::uint32_t> sizes = {8, 16, 32};
    const auto results =
        bench::forAllApps(opt, [&](const std::string &app) {
            const Trace trace = buildApp(app, opt.scale, opt.seed);
            std::vector<double> per_size;
            for (std::uint32_t size : sizes) {
                RunConfig cfg;
                cfg.oversub = 0.75;
                cfg.seed = opt.seed;
                cfg.hpe.pageSetSize = size;
                cfg.hpe.wrongEvictionThreshold = size;
                cfg.hpe.hitChannel = HitChannel::Direct;
                cfg.hpe.dynamicAdjustment = false;
                cfg.hpe.forcedStrategy = manualStrategy(app);
                per_size.push_back(runTiming(trace, PolicyKind::Hpe, cfg).ipc);
            }
            return per_size;
        });

    // per type -> per size -> IPCs
    std::map<std::string, std::map<std::uint32_t, std::vector<double>>> ipc;
    const auto apps = bench::allApps();
    for (std::size_t i = 0; i < apps.size(); ++i)
        for (std::size_t s = 0; s < sizes.size(); ++s)
            ipc[bench::typeOf(apps[i])][sizes[s]].push_back(results[i][s]);

    TextTable t({"pattern type", "size 8", "size 16", "size 32"});
    for (auto &[type, by_size] : ipc) {
        const double base = bench::mean(by_size[8]);
        t.addRow({"type " + type, TextTable::num(1.0, 3),
                  TextTable::num(bench::mean(by_size[16]) / base, 3),
                  TextTable::num(bench::mean(by_size[32]) / base, 3)});
    }
    t.print();
    std::cout << "\n(The paper selects 16: size 32 shortens the chain but "
                 "inflates ratio1 for regular apps.)\n";
    return 0;
}
