/**
 * @file
 * Fig. 7 — HPE's sensitivity to page-set size {8, 16, 32} with interval
 * length 64, reported as average timing IPC per pattern type normalized
 * to size 8.
 *
 * Methodology follows §V-A: dynamic adjustment off, eviction strategy
 * selected manually per application, and the idealized hit channel
 * (page-walk hit information delivered without HIR).
 *
 * Paper shape target: all three sizes within ~10% of each other.
 */

#include "bench_common.hpp"

namespace {

/** §V-C strategy each app settles on (used for manual selection). */
hpe::ForcedStrategy
manualStrategy(const std::string &app)
{
    using hpe::ForcedStrategy;
    for (const char *lru_app : {"KMN", "NW", "B+T", "HYB", "SPV", "MVT", "HWL"})
        if (app == lru_app)
            return ForcedStrategy::Lru;
    return ForcedStrategy::MruC;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hpe;
    const auto opt = bench::parseOptions(argc, argv);
    bench::banner("Fig. 7: HPE sensitivity to page set size (IPC, norm. to 8)",
                  opt);

    const std::vector<std::uint32_t> sizes = {8, 16, 32};
    // per type -> per size -> IPCs
    std::map<std::string, std::map<std::uint32_t, std::vector<double>>> ipc;

    for (const std::string &app : bench::allApps()) {
        const Trace trace = buildApp(app, opt.scale, opt.seed);
        for (std::uint32_t size : sizes) {
            RunConfig cfg;
            cfg.oversub = 0.75;
            cfg.seed = opt.seed;
            cfg.hpe.pageSetSize = size;
            cfg.hpe.wrongEvictionThreshold = size;
            cfg.hpe.hitChannel = HitChannel::Direct;
            cfg.hpe.dynamicAdjustment = false;
            cfg.hpe.forcedStrategy = manualStrategy(app);
            const auto r = runTiming(trace, PolicyKind::Hpe, cfg);
            ipc[bench::typeOf(app)][size].push_back(r.ipc);
        }
    }

    TextTable t({"pattern type", "size 8", "size 16", "size 32"});
    for (auto &[type, by_size] : ipc) {
        const double base = bench::mean(by_size[8]);
        t.addRow({"type " + type, TextTable::num(1.0, 3),
                  TextTable::num(bench::mean(by_size[16]) / base, 3),
                  TextTable::num(bench::mean(by_size[32]) / base, 3)});
    }
    t.print();
    std::cout << "\n(The paper selects 16: size 32 shortens the chain but "
                 "inflates ratio1 for regular apps.)\n";
    return 0;
}
