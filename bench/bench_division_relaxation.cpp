/**
 * @file
 * §V-B extension — the paper states (result not shown) that relaxing the
 * page-set division requirement improves NW.  This bench sweeps the
 * division threshold for the division-sensitive applications and reports
 * divisions performed and fault counts.
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace hpe;
    const auto opt = bench::parseOptions(argc, argv);
    bench::banner("Division-requirement relaxation (the paper's NW note)",
                  opt);

    const std::vector<std::uint32_t> thresholds = {64, 48, 32, 24, 16};

    TextTable t({"app", "threshold", "divisions", "faults",
                 "faults vs strict"});
    for (const std::string &app : {std::string("NW"), std::string("MVT"),
                                   std::string("BFS")}) {
        const Trace trace = buildApp(app, opt.scale, opt.seed);
        double strict_faults = 0;
        for (std::uint32_t threshold : thresholds) {
            RunConfig cfg;
            cfg.oversub = 0.75;
            cfg.seed = opt.seed;
            cfg.hpe.divisionThreshold = threshold;
            const auto run = runFunctionalInspect(trace, PolicyKind::Hpe, cfg);
            if (threshold == 64)
                strict_faults = static_cast<double>(run.paging.faults);
            t.addRow({app, std::to_string(threshold),
                      std::to_string(
                          run.stats->findCounter("hpe.chain.divisions").value()),
                      std::to_string(run.paging.faults),
                      TextTable::num(static_cast<double>(run.paging.faults)
                                         / strict_faults,
                                     3)});
        }
    }
    t.print();
    return 0;
}
