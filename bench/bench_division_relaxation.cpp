/**
 * @file
 * §V-B extension — the paper states (result not shown) that relaxing the
 * page-set division requirement improves NW.  This bench sweeps the
 * division threshold for the division-sensitive applications and reports
 * divisions performed and fault counts.
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace hpe;
    const auto opt = bench::parseOptions(argc, argv);
    bench::banner("Division-requirement relaxation (the paper's NW note)",
                  opt);

    const std::vector<std::uint32_t> thresholds = {64, 48, 32, 24, 16};
    const std::vector<std::string> apps = {"NW", "MVT", "BFS"};

    struct Cell
    {
        std::uint64_t divisions, faults;
    };
    const auto results =
        bench::forApps(opt, apps, [&](const std::string &app) {
            const Trace trace = buildApp(app, opt.scale, opt.seed);
            std::vector<Cell> cells;
            for (std::uint32_t threshold : thresholds) {
                RunConfig cfg;
                cfg.oversub = 0.75;
                cfg.seed = opt.seed;
                cfg.hpe.divisionThreshold = threshold;
                const auto run =
                    runFunctionalInspect(trace, PolicyKind::Hpe, cfg);
                cells.push_back(Cell{
                    run.stats->findCounter("hpe.chain.divisions").value(),
                    run.paging.faults});
            }
            return cells;
        });

    TextTable t({"app", "threshold", "divisions", "faults",
                 "faults vs strict"});
    for (std::size_t i = 0; i < apps.size(); ++i) {
        double strict_faults = 0;
        for (std::size_t s = 0; s < thresholds.size(); ++s) {
            const Cell &cell = results[i][s];
            if (thresholds[s] == 64)
                strict_faults = static_cast<double>(cell.faults);
            t.addRow({apps[i], std::to_string(thresholds[s]),
                      std::to_string(cell.divisions),
                      std::to_string(cell.faults),
                      TextTable::num(static_cast<double>(cell.faults)
                                         / strict_faults,
                                     3)});
        }
    }
    t.print();
    return 0;
}
