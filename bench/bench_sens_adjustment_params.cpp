/**
 * @file
 * §IV-E/§V-A sensitivities the paper determined "through sensitivity
 * test (result is not shown)": the wrong-eviction threshold that triggers
 * dynamic adjustment, and the depth of the per-strategy eviction FIFOs.
 * Reported as mean functional faults across the switching applications.
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace hpe;
    const auto opt = bench::parseOptions(argc, argv);
    bench::banner("Sensitivity: wrong-eviction threshold and FIFO depth", opt);

    const std::vector<std::string> apps = {"SRD", "HSD", "BFS", "HIS", "SAD"};
    const std::vector<std::uint32_t> thresholds = {4, 8, 16, 32, 64};
    const std::vector<std::uint32_t> depths = {32, 64, 128, 256, 512};

    struct AppResult
    {
        std::vector<double> faultsT, adjustments; // aligned with thresholds
        std::vector<double> faultsD, wrong;       // aligned with depths
    };
    const auto results =
        bench::forApps(opt, apps, [&](const std::string &app) {
            const Trace trace = buildApp(app, opt.scale, opt.seed);
            AppResult r;
            for (std::uint32_t threshold : thresholds) {
                RunConfig cfg;
                cfg.oversub = 0.75;
                cfg.seed = opt.seed;
                cfg.hpe.wrongEvictionThreshold = threshold;
                const auto run =
                    runFunctionalInspect(trace, PolicyKind::Hpe, cfg);
                r.faultsT.push_back(static_cast<double>(run.paging.faults));
                r.adjustments.push_back(static_cast<double>(
                    run.hpe()->adjustment().timeline().size() - 1));
            }
            for (std::uint32_t depth : depths) {
                RunConfig cfg;
                cfg.oversub = 0.75;
                cfg.seed = opt.seed;
                cfg.hpe.fifoDepth = depth;
                const auto run =
                    runFunctionalInspect(trace, PolicyKind::Hpe, cfg);
                r.faultsD.push_back(static_cast<double>(run.paging.faults));
                r.wrong.push_back(static_cast<double>(
                    run.stats->findCounter("hpe.adjust.wrongEvictions")
                        .value()));
            }
            return r;
        });

    std::cout << "wrong-eviction threshold (paper: page set size = 16):\n";
    TextTable t1({"threshold", "mean faults", "mean switches+jumps"});
    for (std::size_t s = 0; s < thresholds.size(); ++s) {
        std::vector<double> faults, adjustments;
        for (const AppResult &r : results) {
            faults.push_back(r.faultsT[s]);
            adjustments.push_back(r.adjustments[s]);
        }
        t1.addRow({std::to_string(thresholds[s]),
                   TextTable::num(bench::mean(faults), 0),
                   TextTable::num(bench::mean(adjustments), 1)});
    }
    t1.print();

    std::cout << "\nFIFO depth (paper: 2 x interval = 128):\n";
    TextTable t2({"depth", "mean faults", "mean wrong evictions"});
    for (std::size_t s = 0; s < depths.size(); ++s) {
        std::vector<double> faults, wrong;
        for (const AppResult &r : results) {
            faults.push_back(r.faultsD[s]);
            wrong.push_back(r.wrong[s]);
        }
        t2.addRow({std::to_string(depths[s]),
                   TextTable::num(bench::mean(faults), 0),
                   TextTable::num(bench::mean(wrong), 0)});
    }
    t2.print();
    std::cout << "\n(A low threshold over-reacts, a high one never adapts; "
                 "the paper picks page-set size, which filters most "
                 "unnecessary switches.)\n";
    return 0;
}
