/**
 * @file
 * §IV-E/§V-A sensitivities the paper determined "through sensitivity
 * test (result is not shown)": the wrong-eviction threshold that triggers
 * dynamic adjustment, and the depth of the per-strategy eviction FIFOs.
 * Reported as mean functional faults across the switching applications.
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace hpe;
    const auto opt = bench::parseOptions(argc, argv);
    bench::banner("Sensitivity: wrong-eviction threshold and FIFO depth", opt);

    const std::vector<const char *> apps = {"SRD", "HSD", "BFS", "HIS", "SAD"};

    std::cout << "wrong-eviction threshold (paper: page set size = 16):\n";
    TextTable t1({"threshold", "mean faults", "mean switches+jumps"});
    for (std::uint32_t threshold : {4u, 8u, 16u, 32u, 64u}) {
        std::vector<double> faults, adjustments;
        for (const char *app : apps) {
            const Trace trace = buildApp(app, opt.scale, opt.seed);
            RunConfig cfg;
            cfg.oversub = 0.75;
            cfg.seed = opt.seed;
            cfg.hpe.wrongEvictionThreshold = threshold;
            const auto run = runFunctionalInspect(trace, PolicyKind::Hpe, cfg);
            faults.push_back(static_cast<double>(run.paging.faults));
            adjustments.push_back(static_cast<double>(
                run.hpe()->adjustment().timeline().size() - 1));
        }
        t1.addRow({std::to_string(threshold),
                   TextTable::num(bench::mean(faults), 0),
                   TextTable::num(bench::mean(adjustments), 1)});
    }
    t1.print();

    std::cout << "\nFIFO depth (paper: 2 x interval = 128):\n";
    TextTable t2({"depth", "mean faults", "mean wrong evictions"});
    for (std::uint32_t depth : {32u, 64u, 128u, 256u, 512u}) {
        std::vector<double> faults, wrong;
        for (const char *app : apps) {
            const Trace trace = buildApp(app, opt.scale, opt.seed);
            RunConfig cfg;
            cfg.oversub = 0.75;
            cfg.seed = opt.seed;
            cfg.hpe.fifoDepth = depth;
            const auto run = runFunctionalInspect(trace, PolicyKind::Hpe, cfg);
            faults.push_back(static_cast<double>(run.paging.faults));
            wrong.push_back(static_cast<double>(
                run.stats->findCounter("hpe.adjust.wrongEvictions").value()));
        }
        t2.addRow({std::to_string(depth),
                   TextTable::num(bench::mean(faults), 0),
                   TextTable::num(bench::mean(wrong), 0)});
    }
    t2.print();
    std::cout << "\n(A low threshold over-reacts, a high one never adapts; "
                 "the paper picks page-set size, which filters most "
                 "unnecessary switches.)\n";
    return 0;
}
