/**
 * @file
 * Fig. 13 — breakdown of eviction-strategy adjustment per application at
 * both oversubscription rates: percent of (post-classification) faults
 * each strategy was active for, plus search-point jumps.
 *
 * Paper shape targets: most applications never adjust; BFS/SAD/HIS
 * switch between LRU and MRU-C; SRD/HSD/DWT/SGM adjust the search point.
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace hpe;
    const auto opt = bench::parseOptions(argc, argv);
    bench::banner("Fig. 13: eviction-strategy adjustment breakdown", opt);

    struct AppRuns
    {
        InspectableRun r75, r50;
    };
    const auto runs = bench::forAllApps(opt, [&](const std::string &app) {
        const Trace trace = buildApp(app, opt.scale, opt.seed);
        RunConfig cfg;
        cfg.seed = opt.seed;
        AppRuns r;
        cfg.oversub = 0.75;
        r.r75 = runFunctionalInspect(trace, PolicyKind::Hpe, cfg);
        cfg.oversub = 0.50;
        r.r50 = runFunctionalInspect(trace, PolicyKind::Hpe, cfg);
        return r;
    });

    TextTable t({"app", "rate", "category", "LRU %", "MRU-C %", "switches",
                 "jumps", "timeline"});
    const auto apps = bench::allApps();
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const std::string &app = apps[i];
        for (double rate : {0.75, 0.50}) {
            const InspectableRun &run =
                rate == 0.75 ? runs[i].r75 : runs[i].r50;
            const auto &cls = run.hpe()->classification();
            const auto &timeline = run.hpe()->adjustment().timeline();
            const std::uint64_t total = run.hpe()->faultNumber();
            if (!cls || timeline.empty()) {
                t.addRow({app, TextTable::num(rate * 100, 0) + "%", "-", "-",
                          "-", "-", "-", "memory never full"});
                continue;
            }

            // Integrate strategy usage over the fault timeline.
            std::uint64_t lru_faults = 0, mruc_faults = 0, switches = 0,
                          jumps = 0;
            for (std::size_t i = 0; i < timeline.size(); ++i) {
                const std::uint64_t begin = timeline[i].faultNumber;
                const std::uint64_t end =
                    i + 1 < timeline.size() ? timeline[i + 1].faultNumber
                                            : total;
                (timeline[i].strategy == Strategy::Lru ? lru_faults
                                                       : mruc_faults) +=
                    end - begin;
                if (i > 0) {
                    if (timeline[i].strategy != timeline[i - 1].strategy)
                        ++switches;
                    if (timeline[i].searchOffset
                        != timeline[i - 1].searchOffset)
                        ++jumps;
                }
            }
            const double active =
                static_cast<double>(lru_faults + mruc_faults);
            std::string timeline_str;
            for (const auto &ev : timeline) {
                if (!timeline_str.empty())
                    timeline_str += " -> ";
                timeline_str += strategyName(ev.strategy);
                if (ev.searchOffset > 0)
                    timeline_str += "+" + std::to_string(ev.searchOffset);
            }
            t.addRow({app, TextTable::num(rate * 100, 0) + "%",
                      categoryName(cls->category),
                      TextTable::num(100.0 * lru_faults / active, 1),
                      TextTable::num(100.0 * mruc_faults / active, 1),
                      std::to_string(switches), std::to_string(jumps),
                      timeline_str});
        }
    }
    t.print();
    return 0;
}
