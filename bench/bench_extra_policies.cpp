/**
 * @file
 * Extended baseline comparison (beyond the paper's Fig. 12): every policy
 * in the library — including plain CLOCK, LFU, FIFO, and the DIP
 * adaptation of §VI's related-work discussion — on all 23 applications,
 * evictions normalized to Ideal at 75% oversubscription.
 *
 * Tests the paper's two related-work claims directly:
 *  - "using frequency information is not enough" (LFU's column);
 *  - DIP-style set dueling adapted to memory (the DIP column).
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace hpe;
    const auto opt = bench::parseOptions(argc, argv);
    bench::banner("Extended baselines: evictions normalized to Ideal (75%)",
                  opt);

    const std::vector<PolicyKind> kinds = {
        PolicyKind::Lru,  PolicyKind::Fifo,     PolicyKind::Clock,
        PolicyKind::Lfu,  PolicyKind::Dip,      PolicyKind::Random,
        PolicyKind::Rrip, PolicyKind::ClockPro, PolicyKind::Hpe,
    };

    std::vector<std::string> headers{"type", "app"};
    for (PolicyKind kind : kinds)
        headers.push_back(policyKindName(kind));
    TextTable t(headers);

    const auto per_app =
        bench::forAllApps(opt, [&](const std::string &app) {
            const Trace trace = buildApp(app, opt.scale, opt.seed);
            RunConfig cfg;
            cfg.oversub = 0.75;
            cfg.seed = opt.seed;
            const auto ideal = runFunctional(trace, PolicyKind::Ideal, cfg);
            const double base = ideal.evictions > 0
                ? static_cast<double>(ideal.evictions)
                : 1.0;
            std::vector<double> per_kind;
            for (PolicyKind kind : kinds) {
                const auto r = runFunctional(trace, kind, cfg);
                per_kind.push_back(static_cast<double>(r.evictions) / base);
            }
            return per_kind;
        });

    std::map<PolicyKind, std::vector<double>> ratios;
    const auto apps = bench::allApps();
    for (std::size_t i = 0; i < apps.size(); ++i) {
        std::vector<std::string> row{bench::typeOf(apps[i]), apps[i]};
        for (std::size_t k = 0; k < kinds.size(); ++k) {
            ratios[kinds[k]].push_back(per_app[i][k]);
            row.push_back(TextTable::num(per_app[i][k], 2));
        }
        t.addRow(row);
    }
    std::vector<std::string> mean_row{"", "mean"};
    for (PolicyKind kind : kinds)
        mean_row.push_back(TextTable::num(bench::mean(ratios[kind]), 2));
    t.addRow(mean_row);
    t.print();
    std::cout << "\n(LFU shows frequency alone misleads on moving working "
                 "sets; DIP recovers part of the thrashing loss but lacks "
                 "HPE's spatial page sets and hit information.)\n";
    return 0;
}
