/**
 * @file
 * Load injector for the hpe_serve daemon: N concurrent clients firing
 * mixed hot/cold fingerprint traffic, reporting a latency histogram and
 * the daemon's shed-mode counters as JSON.
 *
 * Hot requests repeat a small set of fingerprints (after the first
 * computation they are cache hits / coalesced waits — the traffic a
 * saturated daemon must keep answering); cold requests are unique
 * (client, iteration) fingerprints that each demand a computation — the
 * traffic tiered shedding exists to push back on.
 *
 * By default the bench hosts its own daemon on a temporary socket with
 * a deliberately small --max-queue so the shed tiers actually engage;
 * pass --socket to drive an externally managed daemon instead (the
 * kill-9 recovery CI leg does).  Every response is counted — ok,
 * cached, coalesced, shed, error — and the run *fails* (exit 1) only
 * when the daemon stops answering, which is the bench's contract: under
 * any admissible load the daemon sheds, it never dies.
 *
 *   bench_serve_load [--clients 64] [--requests 12] [--hot 0.7]
 *                    [--scale 0.05] [--max-queue 4] [--socket PATH]
 *                    [--store-dir DIR] [--out FILE|-]
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "api/api.hpp"
#include "api/json.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace {

using hpe::api::json::Object;
using hpe::api::json::Value;

struct Options
{
    unsigned clients = 64;
    unsigned requests = 12;
    double hotFraction = 0.7;
    double scale = 0.05;
    std::size_t maxQueue = 4;
    std::string socketPath; // empty = self-host
    std::string storeDir;   // self-host only
    std::string out = "-";
};

[[noreturn]] void
usage(const char *prog)
{
    std::cerr
        << "usage: " << prog
        << " [--clients N] [--requests N] [--hot F] [--scale S]\n"
           "       [--max-queue N] [--socket PATH] [--store-dir DIR]\n"
           "       [--out FILE|-]\n"
           "  --clients    concurrent client threads (default 64)\n"
           "  --requests   requests per client (default 12)\n"
           "  --hot        fraction of requests drawn from the shared hot\n"
           "               fingerprint set (default 0.7)\n"
           "  --scale      workload scale of each cell (default 0.05)\n"
           "  --max-queue  self-hosted daemon admission bound (default 4)\n"
           "  --socket     drive an external daemon instead of self-hosting\n"
           "  --store-dir  durable store for the self-hosted daemon\n"
           "  --out        JSON report destination (default '-': stdout)\n";
    std::exit(2);
}

Options
parseOptions(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (++i >= argc) {
                std::cerr << argv[0] << ": " << arg << " requires a value\n";
                usage(argv[0]);
            }
            return argv[i];
        };
        char *end = nullptr;
        if (arg == "--clients")
            opt.clients = static_cast<unsigned>(std::strtoul(value(), &end, 10));
        else if (arg == "--requests")
            opt.requests = static_cast<unsigned>(std::strtoul(value(), &end, 10));
        else if (arg == "--hot")
            opt.hotFraction = std::strtod(value(), &end);
        else if (arg == "--scale")
            opt.scale = std::strtod(value(), &end);
        else if (arg == "--max-queue")
            opt.maxQueue = std::strtoull(value(), &end, 10);
        else if (arg == "--socket")
            opt.socketPath = value();
        else if (arg == "--store-dir")
            opt.storeDir = value();
        else if (arg == "--out")
            opt.out = value();
        else if (arg == "--help" || arg == "-h")
            usage(argv[0]);
        else {
            std::cerr << argv[0] << ": unexpected argument '" << arg << "'\n";
            usage(argv[0]);
        }
        if (end != nullptr && (*end != '\0' || end == argv[i])) {
            std::cerr << argv[0] << ": bad value for " << arg << "\n";
            usage(argv[0]);
        }
    }
    if (opt.clients == 0 || opt.requests == 0 || opt.hotFraction < 0
        || opt.hotFraction > 1 || opt.scale <= 0)
        usage(argv[0]);
    return opt;
}

/** One run-request line for (app fixed, seed varies = fingerprint varies). */
std::string
requestLine(double scale, std::uint64_t seed)
{
    hpe::api::ExperimentRequest req;
    req.app = "STN";
    req.policy = "LRU";
    req.functional = true;
    req.scale = scale;
    req.seed = seed;
    req.normalize();
    return Value(Object{{"request", req.toJson()}, {"type", "run"}}).dump();
}

/** Power-of-two latency histogram in microseconds. */
struct Histogram
{
    static constexpr unsigned kBuckets = 24; // up to ~8.4 s
    std::vector<std::uint64_t> counts = std::vector<std::uint64_t>(kBuckets);

    static unsigned
    bucketOf(std::uint64_t us)
    {
        unsigned b = 0;
        while ((1ull << b) <= us && b + 1 < kBuckets)
            ++b;
        return b;
    }
};

struct ClientTotals
{
    std::uint64_t ok = 0;
    std::uint64_t cached = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t shed = 0;
    std::uint64_t errors = 0;
    std::uint64_t transportFailures = 0;
    std::vector<std::uint64_t> latenciesUs;
};

ClientTotals
runClient(const Options &opt, const std::string &socket, unsigned id,
          const std::vector<std::string> &hotLines)
{
    ClientTotals totals;
    std::mt19937_64 rng(0x9e3779b97f4a7c15ull ^ id);
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    for (unsigned i = 0; i < opt.requests; ++i) {
        const bool hot = coin(rng) < opt.hotFraction;
        const std::string &line =
            hot ? hotLines[rng() % hotLines.size()]
                : [&]() -> const std::string & {
                      static thread_local std::string cold;
                      // Unique (client, iteration) seed => unique
                      // fingerprint => a genuine computation demand.
                      cold = requestLine(opt.scale,
                                         1000 + id * 10000ull + i);
                      return cold;
                  }();
        const auto start = std::chrono::steady_clock::now();
        std::string response, error;
        const bool sent =
            hpe::serve::submitLine(socket, line, response, error);
        const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - start)
                            .count();
        totals.latenciesUs.push_back(static_cast<std::uint64_t>(us));
        if (!sent) {
            ++totals.transportFailures;
            continue;
        }
        const auto parsed = hpe::api::json::parse(response);
        if (!parsed.has_value() || !parsed->isObject()) {
            ++totals.errors;
            continue;
        }
        const Value *ok = parsed->find("ok");
        if (ok != nullptr && ok->isBool() && ok->asBool()) {
            ++totals.ok;
            if (const Value *c = parsed->find("cached");
                c != nullptr && c->asBool())
                ++totals.cached;
            if (const Value *c = parsed->find("coalesced");
                c != nullptr && c->asBool())
                ++totals.coalesced;
        } else if (parsed->find("retry_after_ms") != nullptr) {
            ++totals.shed;
        } else {
            ++totals.errors;
        }
    }
    return totals;
}

std::uint64_t
percentile(std::vector<std::uint64_t> &sorted, double p)
{
    if (sorted.empty())
        return 0;
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseOptions(argc, argv);

    // Self-host unless an external daemon was named.
    std::unique_ptr<hpe::serve::Server> server;
    std::string socket = opt.socketPath;
    char tmpl[] = "/tmp/hpe_serve_load.XXXXXX";
    if (socket.empty()) {
        if (::mkdtemp(tmpl) == nullptr) {
            std::cerr << "mkdtemp: " << std::strerror(errno) << "\n";
            return 1;
        }
        socket = std::string(tmpl) + "/load.sock";
        hpe::serve::ServeConfig cfg;
        cfg.socketPath = socket;
        cfg.maxQueue = opt.maxQueue;
        cfg.storeDir = opt.storeDir;
        server = std::make_unique<hpe::serve::Server>(cfg);
        std::string error;
        if (!server->start(error)) {
            std::cerr << "server start failed: " << error << "\n";
            return 1;
        }
    }

    // The hot set: 4 distinct cells every client keeps re-requesting.
    std::vector<std::string> hotLines;
    for (std::uint64_t seed = 1; seed <= 4; ++seed)
        hotLines.push_back(requestLine(opt.scale, seed));

    const auto wallStart = std::chrono::steady_clock::now();
    std::vector<ClientTotals> perClient(opt.clients);
    std::vector<std::thread> threads;
    threads.reserve(opt.clients);
    for (unsigned c = 0; c < opt.clients; ++c)
        threads.emplace_back([&, c] {
            perClient[c] = runClient(opt, socket, c, hotLines);
        });
    for (std::thread &t : threads)
        t.join();
    const double wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now()
                                      - wallStart)
            .count();

    ClientTotals totals;
    for (const ClientTotals &ct : perClient) {
        totals.ok += ct.ok;
        totals.cached += ct.cached;
        totals.coalesced += ct.coalesced;
        totals.shed += ct.shed;
        totals.errors += ct.errors;
        totals.transportFailures += ct.transportFailures;
        totals.latenciesUs.insert(totals.latenciesUs.end(),
                                  ct.latenciesUs.begin(),
                                  ct.latenciesUs.end());
    }

    // The daemon must have survived the whole run: the final stats
    // round trip doubles as the liveness check.
    std::string statsResponse, error;
    const bool alive = hpe::serve::submitLine(
        socket, R"({"type":"stats"})", statsResponse, error);
    Value stats;
    if (alive)
        if (auto parsed = hpe::api::json::parse(statsResponse);
            parsed.has_value() && parsed->find("stats") != nullptr)
            stats = *parsed->find("stats");

    Histogram hist;
    for (const std::uint64_t us : totals.latenciesUs)
        ++hist.counts[Histogram::bucketOf(us)];
    std::sort(totals.latenciesUs.begin(), totals.latenciesUs.end());

    hpe::api::json::Array buckets;
    for (unsigned b = 0; b < Histogram::kBuckets; ++b)
        if (hist.counts[b] > 0)
            buckets.push_back(Value(Object{
                {"count", hist.counts[b]},
                {"le_us", std::uint64_t{1} << b},
            }));

    Object report{
        {"clients", opt.clients},
        {"config",
         Object{{"hot_fraction", opt.hotFraction},
                {"max_queue", static_cast<std::uint64_t>(opt.maxQueue)},
                {"requests_per_client", opt.requests},
                {"scale", opt.scale},
                {"self_hosted", server != nullptr},
                {"store_dir", opt.storeDir}}},
        {"daemon_alive", alive},
        {"latency_us",
         Object{{"histogram", std::move(buckets)},
                {"max", totals.latenciesUs.empty()
                            ? std::uint64_t{0}
                            : totals.latenciesUs.back()},
                {"p50", percentile(totals.latenciesUs, 0.50)},
                {"p90", percentile(totals.latenciesUs, 0.90)},
                {"p99", percentile(totals.latenciesUs, 0.99)}}},
        {"responses",
         Object{{"cached", totals.cached},
                {"coalesced", totals.coalesced},
                {"errors", totals.errors},
                {"ok", totals.ok},
                {"shed", totals.shed},
                {"total", static_cast<std::uint64_t>(totals.latenciesUs.size())},
                {"transport_failures", totals.transportFailures}}},
        {"stats", std::move(stats)},
        {"wall_seconds", wallSeconds},
    };
    const std::string json = Value(std::move(report)).dump();
    if (opt.out == "-") {
        std::cout << json << "\n";
    } else {
        std::ofstream file(opt.out);
        if (!file) {
            std::cerr << "cannot write '" << opt.out << "'\n";
            return 1;
        }
        file << json << "\n";
    }

    if (server != nullptr)
        server->stop();
    if (!alive) {
        std::cerr << "FAIL: daemon stopped answering: " << error << "\n";
        return 1;
    }
    std::cerr << "bench_serve_load: " << totals.latenciesUs.size()
              << " requests, " << totals.ok << " ok (" << totals.cached
              << " cached, " << totals.coalesced << " coalesced), "
              << totals.shed << " shed, " << totals.errors
              << " errors, " << totals.transportFailures
              << " transport failures\n";
    return 0;
}
