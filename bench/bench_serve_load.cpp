/**
 * @file
 * Load injector for the hpe_serve daemon: thousands of concurrent
 * clients firing mixed hot/cold fingerprint traffic over Unix or TCP
 * endpoints, reporting a latency histogram, the daemon's shed-mode
 * counters, and a per-shard hit/shed breakdown as JSON.
 *
 * The injector is a single-threaded epoll engine — one nonblocking
 * connection per client, a connect storm up front, then each client
 * round-trips its requests back-to-back on its persistent connection.
 * One thread drives 4096 clients comfortably; client count is bounded
 * by fds, not threads (raiseFdLimit() lifts the soft cap on boot).
 *
 * Hot requests repeat a small set of fingerprints (after the first
 * computation they are cache hits / coalesced waits — the traffic a
 * saturated daemon must keep answering); cold requests are unique
 * (client, iteration) fingerprints that each demand a computation — the
 * traffic tiered shedding exists to push back on.
 *
 * By default the bench hosts its own daemon on a temporary endpoint
 * (--transport picks unix or tcp) with a deliberately small --max-queue
 * so the shed tiers actually engage; pass --socket to drive an
 * externally managed daemon instead (the kill-9 recovery CI leg does).
 * Every response is counted — ok, cached, coalesced, shed, error — and
 * the run *fails* (exit 1) only when the daemon stops answering or a
 * --golden digest check mismatches, which is the bench's contract:
 * under any admissible load the daemon sheds, it never dies, and a
 * cell served over any socket is byte-identical to the same cell run
 * in-process.
 *
 *   bench_serve_load [--clients 64] [--requests 12] [--hot 0.7]
 *                    [--scale 0.05] [--max-queue 4] [--shards 1]
 *                    [--transport unix|tcp] [--socket ENDPOINT]
 *                    [--store-dir DIR] [--golden FILE] [--out FILE|-]
 */

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include <netdb.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "api/api.hpp"
#include "api/json.hpp"
#include "api/protocol.hpp"
#include "serve/client.hpp"
#include "serve/endpoint.hpp"
#include "serve/server.hpp"

namespace {

using hpe::api::json::Object;
using hpe::api::json::Value;
namespace protocol = hpe::api::protocol;

struct Options
{
    unsigned clients = 64;
    unsigned requests = 12;
    double hotFraction = 0.7;
    double scale = 0.05;
    std::size_t maxQueue = 4;
    unsigned shards = 1;
    std::string transport = "unix"; // self-host listener kind
    std::string socketPath;         // endpoint text; empty = self-host
    std::string storeDir;           // self-host only
    std::string golden;             // digest file; empty = skip the check
    std::string out = "-";
};

[[noreturn]] void
usage(const char *prog)
{
    std::cerr
        << "usage: " << prog
        << " [--clients N] [--requests N] [--hot F] [--scale S]\n"
           "       [--max-queue N] [--shards N] [--transport unix|tcp]\n"
           "       [--socket ENDPOINT] [--store-dir DIR] [--golden FILE]\n"
           "       [--out FILE|-]\n"
           "  --clients    concurrent clients, one connection each "
           "(default 64)\n"
           "  --requests   requests per client (default 12)\n"
           "  --hot        fraction of requests drawn from the shared hot\n"
           "               fingerprint set (default 0.7)\n"
           "  --scale      workload scale of each cell (default 0.05)\n"
           "  --max-queue  self-hosted daemon admission bound (default 4)\n"
           "  --shards     self-hosted daemon shard count (default 1)\n"
           "  --transport  self-hosted listener: unix socket or tcp on\n"
           "               an ephemeral 127.0.0.1 port (default unix)\n"
           "  --socket     drive an external daemon instead (endpoint\n"
           "               grammar: unix:/path | tcp:host:port | path)\n"
           "  --store-dir  durable store for the self-hosted daemon\n"
           "  --golden     golden-cell digest file: created when absent,\n"
           "               verified byte-for-byte when present\n"
           "  --out        JSON report destination (default '-': stdout)\n";
    std::exit(2);
}

Options
parseOptions(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (++i >= argc) {
                std::cerr << argv[0] << ": " << arg << " requires a value\n";
                usage(argv[0]);
            }
            return argv[i];
        };
        char *end = nullptr;
        if (arg == "--clients")
            opt.clients = static_cast<unsigned>(std::strtoul(value(), &end, 10));
        else if (arg == "--requests")
            opt.requests = static_cast<unsigned>(std::strtoul(value(), &end, 10));
        else if (arg == "--hot")
            opt.hotFraction = std::strtod(value(), &end);
        else if (arg == "--scale")
            opt.scale = std::strtod(value(), &end);
        else if (arg == "--max-queue")
            opt.maxQueue = std::strtoull(value(), &end, 10);
        else if (arg == "--shards")
            opt.shards = static_cast<unsigned>(std::strtoul(value(), &end, 10));
        else if (arg == "--transport")
            opt.transport = value();
        else if (arg == "--socket")
            opt.socketPath = value();
        else if (arg == "--store-dir")
            opt.storeDir = value();
        else if (arg == "--golden")
            opt.golden = value();
        else if (arg == "--out")
            opt.out = value();
        else if (arg == "--help" || arg == "-h")
            usage(argv[0]);
        else {
            std::cerr << argv[0] << ": unexpected argument '" << arg << "'\n";
            usage(argv[0]);
        }
        if (end != nullptr && (*end != '\0' || end == argv[i])) {
            std::cerr << argv[0] << ": bad value for " << arg << "\n";
            usage(argv[0]);
        }
    }
    if (opt.clients == 0 || opt.requests == 0 || opt.hotFraction < 0
        || opt.hotFraction > 1 || opt.scale <= 0 || opt.shards == 0
        || (opt.transport != "unix" && opt.transport != "tcp"))
        usage(argv[0]);
    return opt;
}

/** The (app fixed, seed varies => fingerprint varies) bench cell. */
hpe::api::ExperimentRequest
benchCell(double scale, std::uint64_t seed)
{
    hpe::api::ExperimentRequest req;
    req.app = "STN";
    req.policy = "LRU";
    req.functional = true;
    req.scale = scale;
    req.seed = seed;
    req.normalize();
    return req;
}

/** One v2 run-request line for a bench cell. */
std::string
requestLine(double scale, std::uint64_t seed)
{
    return Value(Object{{"request", benchCell(scale, seed).toJson()},
                        {"type", "run"},
                        {"v", protocol::kVersionCurrent}})
        .dump();
}

/** Power-of-two latency histogram in microseconds. */
struct Histogram
{
    static constexpr unsigned kBuckets = 24; // up to ~8.4 s
    std::vector<std::uint64_t> counts = std::vector<std::uint64_t>(kBuckets);

    static unsigned
    bucketOf(std::uint64_t us)
    {
        unsigned b = 0;
        while ((1ull << b) <= us && b + 1 < kBuckets)
            ++b;
        return b;
    }
};

std::uint64_t
percentile(std::vector<std::uint64_t> &sorted, double p)
{
    if (sorted.empty())
        return 0;
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
}

struct Totals
{
    std::uint64_t ok = 0;
    std::uint64_t cached = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t shed = 0;
    std::uint64_t errors = 0;
    std::uint64_t transportFailures = 0;
    std::vector<std::uint64_t> latenciesUs;
};

/**
 * The storm engine: N persistent nonblocking connections multiplexed
 * on one epoll, each walking connect -> (send request -> read response
 * line) x requests -> close.
 */
class StormEngine
{
  public:
    StormEngine(const Options &opt, const hpe::serve::Endpoint &endpoint,
                const std::vector<std::string> &hotLines)
        : opt_(opt), endpoint_(endpoint), hotLines_(hotLines)
    {}

    bool
    run(Totals &totals, std::string &error)
    {
        if (endpoint_.kind == hpe::serve::Endpoint::Kind::Tcp
            && !resolveTcp(error))
            return false;
        epollFd_ = ::epoll_create1(EPOLL_CLOEXEC);
        if (epollFd_ < 0) {
            error = std::string("epoll_create1: ") + std::strerror(errno);
            return false;
        }
        clients_.resize(opt_.clients);
        for (unsigned i = 0; i < opt_.clients; ++i) {
            clients_[i].id = i;
            clients_[i].rng.seed(0x9e3779b97f4a7c15ull ^ i);
            startConnect(clients_[i]);
        }
        std::vector<epoll_event> events(512);
        while (doneCount_ < clients_.size()) {
            // Unix connect() reports a full backlog as EAGAIN with no
            // fd to wait on; park those clients and retry each tick.
            const int timeout = retryQueue_.empty() ? 1000 : 1;
            const int ready = ::epoll_wait(epollFd_, events.data(),
                                           static_cast<int>(events.size()),
                                           timeout);
            if (ready < 0) {
                if (errno == EINTR)
                    continue;
                error = std::string("epoll_wait: ") + std::strerror(errno);
                ::close(epollFd_);
                return false;
            }
            for (int e = 0; e < ready; ++e) {
                Client &client = clients_[events[e].data.u32];
                if (client.done)
                    continue;
                if ((events[e].events & EPOLLOUT) != 0)
                    onWritable(client);
                if (!client.done && (events[e].events & EPOLLIN) != 0)
                    onReadable(client);
                if (!client.done
                    && (events[e].events & (EPOLLERR | EPOLLHUP)) != 0
                    && (events[e].events & (EPOLLIN | EPOLLOUT)) == 0)
                    failTransport(client);
            }
            std::vector<std::uint32_t> retries;
            retries.swap(retryQueue_);
            for (const std::uint32_t idx : retries)
                if (!clients_[idx].done)
                    startConnect(clients_[idx]);
        }
        ::close(epollFd_);
        for (Client &client : clients_) {
            totals.ok += client.totals.ok;
            totals.cached += client.totals.cached;
            totals.coalesced += client.totals.coalesced;
            totals.shed += client.totals.shed;
            totals.errors += client.totals.errors;
            totals.transportFailures += client.totals.transportFailures;
            totals.latenciesUs.insert(totals.latenciesUs.end(),
                                      client.totals.latenciesUs.begin(),
                                      client.totals.latenciesUs.end());
        }
        return true;
    }

  private:
    using Clock = std::chrono::steady_clock;

    struct Client
    {
        unsigned id = 0;
        int fd = -1;
        bool connecting = false;
        bool done = false;
        unsigned sent = 0;
        unsigned connectAttempts = 0;
        std::string out;
        std::size_t ooff = 0;
        std::string in;
        Clock::time_point start;
        std::mt19937_64 rng;
        Totals totals;
    };

    bool
    resolveTcp(std::string &error)
    {
        addrinfo hints{};
        hints.ai_family = AF_UNSPEC;
        hints.ai_socktype = SOCK_STREAM;
        addrinfo *result = nullptr;
        const std::string port = std::to_string(endpoint_.port);
        if (const int rc = ::getaddrinfo(endpoint_.host.c_str(), port.c_str(),
                                         &hints, &result);
            rc != 0) {
            error = "resolve('" + endpoint_.spell()
                    + "'): " + ::gai_strerror(rc);
            return false;
        }
        std::memcpy(&tcpAddr_, result->ai_addr, result->ai_addrlen);
        tcpAddrLen_ = result->ai_addrlen;
        tcpFamily_ = result->ai_family;
        ::freeaddrinfo(result);
        return true;
    }

    void
    startConnect(Client &client)
    {
        ++client.connectAttempts;
        sockaddr_un unixAddr{};
        const sockaddr *addr = nullptr;
        socklen_t addrLen = 0;
        int family = AF_UNIX;
        if (endpoint_.kind == hpe::serve::Endpoint::Kind::Unix) {
            unixAddr.sun_family = AF_UNIX;
            std::memcpy(unixAddr.sun_path, endpoint_.path.c_str(),
                        endpoint_.path.size() + 1);
            addr = reinterpret_cast<const sockaddr *>(&unixAddr);
            addrLen = sizeof(unixAddr);
        } else {
            addr = reinterpret_cast<const sockaddr *>(&tcpAddr_);
            addrLen = tcpAddrLen_;
            family = tcpFamily_;
        }
        client.fd = ::socket(family, SOCK_STREAM | SOCK_NONBLOCK
                                         | SOCK_CLOEXEC,
                             0);
        if (client.fd < 0) {
            failTransport(client);
            return;
        }
        if (::connect(client.fd, addr, addrLen) == 0) {
            client.connecting = false;
            registerFd(client, EPOLLIN);
            beginRequest(client);
            return;
        }
        if (errno == EINPROGRESS) {
            client.connecting = true;
            registerFd(client, EPOLLOUT);
            return;
        }
        ::close(client.fd);
        client.fd = -1;
        // Backlog pressure (EAGAIN on unix, refusals under a connect
        // storm): bounded retry, then count a transport failure.
        if ((errno == EAGAIN || errno == ECONNREFUSED)
            && client.connectAttempts < 1000) {
            retryQueue_.push_back(client.id);
            return;
        }
        failTransport(client);
    }

    void
    registerFd(Client &client, std::uint32_t mask)
    {
        epoll_event ev{};
        ev.events = mask;
        ev.data.u32 = client.id;
        ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, client.fd, &ev);
    }

    void
    updateInterest(Client &client)
    {
        epoll_event ev{};
        ev.events = EPOLLIN;
        if (client.ooff < client.out.size())
            ev.events |= EPOLLOUT;
        ev.data.u32 = client.id;
        ::epoll_ctl(epollFd_, EPOLL_CTL_MOD, client.fd, &ev);
    }

    void
    beginRequest(Client &client)
    {
        const bool hot = std::uniform_real_distribution<double>(0.0, 1.0)(
                             client.rng)
                         < opt_.hotFraction;
        if (hot) {
            client.out = hotLines_[client.rng() % hotLines_.size()];
        } else {
            // Unique (client, iteration) seed => unique fingerprint =>
            // a genuine computation demand.
            client.out = requestLine(opt_.scale,
                                     1000 + client.id * 10000ull
                                         + client.sent);
        }
        client.out += '\n';
        client.ooff = 0;
        client.start = Clock::now();
        flush(client);
    }

    void
    flush(Client &client)
    {
        while (client.ooff < client.out.size()) {
            const ssize_t n = ::send(client.fd,
                                     client.out.data() + client.ooff,
                                     client.out.size() - client.ooff,
                                     MSG_NOSIGNAL);
            if (n > 0) {
                client.ooff += static_cast<std::size_t>(n);
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                break;
            failTransport(client);
            return;
        }
        updateInterest(client);
    }

    void
    onWritable(Client &client)
    {
        if (client.connecting) {
            int soError = 0;
            socklen_t len = sizeof soError;
            ::getsockopt(client.fd, SOL_SOCKET, SO_ERROR, &soError, &len);
            if (soError != 0) {
                ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, client.fd, nullptr);
                ::close(client.fd);
                client.fd = -1;
                client.connecting = false;
                if ((soError == ECONNREFUSED || soError == EAGAIN
                     || soError == ETIMEDOUT)
                    && client.connectAttempts < 1000) {
                    retryQueue_.push_back(client.id);
                    return;
                }
                failTransport(client);
                return;
            }
            client.connecting = false;
            beginRequest(client);
            return;
        }
        flush(client);
    }

    void
    onReadable(Client &client)
    {
        char chunk[8192];
        for (;;) {
            const ssize_t n = ::recv(client.fd, chunk, sizeof chunk, 0);
            if (n > 0) {
                client.in.append(chunk, static_cast<std::size_t>(n));
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                break;
            failTransport(client); // EOF or reset mid-conversation
            return;
        }
        std::size_t newline;
        while (!client.done
               && (newline = client.in.find('\n')) != std::string::npos) {
            const std::string line = client.in.substr(0, newline);
            client.in.erase(0, newline + 1);
            recordResponse(client, line);
            if (client.done)
                return;
            if (client.sent < opt_.requests)
                beginRequest(client);
            else
                finish(client);
        }
    }

    void
    recordResponse(Client &client, const std::string &line)
    {
        const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                            Clock::now() - client.start)
                            .count();
        client.totals.latenciesUs.push_back(static_cast<std::uint64_t>(us));
        ++client.sent;
        const auto parsed = hpe::api::json::parse(line);
        if (!parsed.has_value() || !parsed->isObject()) {
            ++client.totals.errors;
            return;
        }
        const Value *ok = parsed->find("ok");
        if (ok != nullptr && ok->isBool() && ok->asBool()) {
            ++client.totals.ok;
            if (const Value *c = parsed->find("cached");
                c != nullptr && c->asBool())
                ++client.totals.cached;
            if (const Value *c = parsed->find("coalesced");
                c != nullptr && c->asBool())
                ++client.totals.coalesced;
        } else if (protocol::retryAfterMs(*parsed).has_value()) {
            ++client.totals.shed;
        } else {
            ++client.totals.errors;
        }
    }

    void
    failTransport(Client &client)
    {
        ++client.totals.transportFailures;
        finish(client);
    }

    void
    finish(Client &client)
    {
        if (client.fd >= 0) {
            ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, client.fd, nullptr);
            ::close(client.fd);
            client.fd = -1;
        }
        if (!client.done) {
            client.done = true;
            ++doneCount_;
        }
    }

    const Options &opt_;
    const hpe::serve::Endpoint &endpoint_;
    const std::vector<std::string> &hotLines_;
    int epollFd_ = -1;
    std::vector<Client> clients_;
    std::vector<std::uint32_t> retryQueue_;
    std::size_t doneCount_ = 0;

    sockaddr_storage tcpAddr_{};
    socklen_t tcpAddrLen_ = 0;
    int tcpFamily_ = AF_UNSPEC;
};

/**
 * The golden-cell check: round-trip every hot cell over the socket
 * *before* the storm, compare each served result byte-for-byte against
 * the same cell computed in-process, and record (or verify) the digest
 * file.  Proves the serving stack — wire protocol, sharding, store —
 * never perturbs a result.
 */
bool
goldenCheck(const Options &opt, const std::string &endpointText,
            std::vector<std::string> &mismatches)
{
    std::vector<std::pair<std::string, std::string>> cells; // fp, dump
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        const hpe::api::ExperimentRequest req = benchCell(opt.scale, seed);
        const std::string local =
            hpe::api::runExperiment(req).toJson().dump();
        const std::string line =
            Value(Object{{"request", req.toJson()},
                         {"type", "run"},
                         {"v", protocol::kVersionCurrent}})
                .dump();
        std::string response, error;
        if (!hpe::serve::submitLine(endpointText, line, response, error)) {
            mismatches.push_back("cell seed " + std::to_string(seed)
                                 + ": transport: " + error);
            continue;
        }
        const auto parsed = hpe::api::json::parse(response);
        const Value *result =
            parsed.has_value() ? parsed->find("result") : nullptr;
        const Value *fp =
            parsed.has_value() ? parsed->find("fingerprint") : nullptr;
        if (result == nullptr || fp == nullptr || !fp->isString()) {
            mismatches.push_back("cell seed " + std::to_string(seed)
                                 + ": malformed response: " + response);
            continue;
        }
        const std::string served = result->dump();
        if (served != local)
            mismatches.push_back("cell seed " + std::to_string(seed)
                                 + ": served result differs from "
                                   "in-process result");
        cells.emplace_back(fp->asString(), served);
    }
    if (!mismatches.empty())
        return false;

    if (opt.golden.empty())
        return true;
    std::ifstream existing(opt.golden);
    if (existing) {
        // Verify mode: the file pins fingerprint + result per cell.
        std::size_t i = 0;
        std::string line;
        while (std::getline(existing, line)) {
            if (line.empty())
                continue;
            const std::size_t tab = line.find('\t');
            if (tab == std::string::npos || i >= cells.size()) {
                mismatches.push_back("golden file malformed or has extra "
                                     "cells");
                return false;
            }
            if (line.substr(0, tab) != cells[i].first
                || line.substr(tab + 1) != cells[i].second)
                mismatches.push_back("golden cell " + std::to_string(i)
                                     + " differs from recorded digest");
            ++i;
        }
        if (i != cells.size())
            mismatches.push_back("golden file is missing cells");
        return mismatches.empty();
    }
    std::ofstream record(opt.golden);
    if (!record) {
        mismatches.push_back("cannot write golden file '" + opt.golden
                             + "'");
        return false;
    }
    for (const auto &[fp, dump] : cells)
        record << fp << '\t' << dump << '\n';
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseOptions(argc, argv);
    hpe::serve::raiseFdLimit();

    // Self-host unless an external daemon was named.
    std::unique_ptr<hpe::serve::Server> server;
    std::string endpointText = opt.socketPath;
    char tmpl[] = "/tmp/hpe_serve_load.XXXXXX";
    if (endpointText.empty()) {
        if (::mkdtemp(tmpl) == nullptr) {
            std::cerr << "mkdtemp: " << std::strerror(errno) << "\n";
            return 1;
        }
        hpe::serve::ServeConfig cfg;
        if (opt.transport == "tcp")
            cfg.socketPath = "tcp:127.0.0.1:0";
        else
            cfg.socketPath = std::string(tmpl) + "/load.sock";
        cfg.shards = opt.shards;
        cfg.maxQueue = opt.maxQueue;
        cfg.storeDir = opt.storeDir;
        server = std::make_unique<hpe::serve::Server>(cfg);
        std::string error;
        if (!server->start(error)) {
            std::cerr << "server start failed: " << error << "\n";
            return 1;
        }
        endpointText = server->boundEndpoints().front();
    }

    // The hot set: 4 distinct cells every client keeps re-requesting.
    std::vector<std::string> hotLines;
    for (std::uint64_t seed = 1; seed <= 4; ++seed)
        hotLines.push_back(requestLine(opt.scale, seed));

    // Golden check first: the hot cells round-trip once while the
    // daemon is quiet, proving served == in-process byte-for-byte
    // (and warming the hot set).
    std::vector<std::string> goldenMismatches;
    const bool goldenOk = goldenCheck(opt, endpointText, goldenMismatches);
    for (const std::string &m : goldenMismatches)
        std::cerr << "golden: " << m << "\n";

    const auto wallStart = std::chrono::steady_clock::now();
    Totals totals;
    {
        hpe::serve::Endpoint endpoint;
        std::string error;
        if (!hpe::serve::parseEndpoint(endpointText, endpoint, error)) {
            std::cerr << error << "\n";
            return 1;
        }
        StormEngine engine(opt, endpoint, hotLines);
        if (!engine.run(totals, error)) {
            std::cerr << "storm engine failed: " << error << "\n";
            return 1;
        }
    }
    const double wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now()
                                      - wallStart)
            .count();

    // The daemon must have survived the whole run: the final stats
    // round trip doubles as the liveness check.
    std::string statsResponse, error;
    const bool alive = hpe::serve::submitLine(
        endpointText, R"({"type":"stats","v":2})", statsResponse, error);
    Value stats;
    if (alive)
        if (auto parsed = hpe::api::json::parse(statsResponse);
            parsed.has_value() && parsed->find("stats") != nullptr)
            stats = *parsed->find("stats");

    Histogram hist;
    for (const std::uint64_t us : totals.latenciesUs)
        ++hist.counts[Histogram::bucketOf(us)];
    std::sort(totals.latenciesUs.begin(), totals.latenciesUs.end());

    hpe::api::json::Array buckets;
    for (unsigned b = 0; b < Histogram::kBuckets; ++b)
        if (hist.counts[b] > 0)
            buckets.push_back(Value(Object{
                {"count", hist.counts[b]},
                {"le_us", std::uint64_t{1} << b},
            }));

    // Per-shard breakdown straight from the daemon's stats response
    // (empty when driving a pre-sharding daemon).
    Value shardBreakdown{hpe::api::json::Array{}};
    if (const Value *shards = stats.find("shards"); shards != nullptr)
        shardBreakdown = *shards;

    Object report{
        {"clients", opt.clients},
        {"config",
         Object{{"hot_fraction", opt.hotFraction},
                {"max_queue", static_cast<std::uint64_t>(opt.maxQueue)},
                {"requests_per_client", opt.requests},
                {"scale", opt.scale},
                {"self_hosted", server != nullptr},
                {"shards", opt.shards},
                {"store_dir", opt.storeDir},
                {"transport", opt.transport}}},
        {"daemon_alive", alive},
        {"endpoint", endpointText},
        {"golden_ok", goldenOk},
        {"latency_us",
         Object{{"histogram", std::move(buckets)},
                {"max", totals.latenciesUs.empty()
                            ? std::uint64_t{0}
                            : totals.latenciesUs.back()},
                {"p50", percentile(totals.latenciesUs, 0.50)},
                {"p90", percentile(totals.latenciesUs, 0.90)},
                {"p99", percentile(totals.latenciesUs, 0.99)}}},
        {"responses",
         Object{{"cached", totals.cached},
                {"coalesced", totals.coalesced},
                {"errors", totals.errors},
                {"ok", totals.ok},
                {"shed", totals.shed},
                {"total", static_cast<std::uint64_t>(totals.latenciesUs.size())},
                {"transport_failures", totals.transportFailures}}},
        {"shards", std::move(shardBreakdown)},
        {"stats", std::move(stats)},
        {"wall_seconds", wallSeconds},
    };
    const std::string json = Value(std::move(report)).dump();
    if (opt.out == "-") {
        std::cout << json << "\n";
    } else {
        std::ofstream file(opt.out);
        if (!file) {
            std::cerr << "cannot write '" << opt.out << "'\n";
            return 1;
        }
        file << json << "\n";
    }

    if (server != nullptr)
        server->stop();
    if (!alive) {
        std::cerr << "FAIL: daemon stopped answering: " << error << "\n";
        return 1;
    }
    if (!goldenOk) {
        std::cerr << "FAIL: golden-cell digest check failed\n";
        return 1;
    }
    std::cerr << "bench_serve_load: " << totals.latenciesUs.size()
              << " requests over " << endpointText << ", " << totals.ok
              << " ok (" << totals.cached << " cached, " << totals.coalesced
              << " coalesced), " << totals.shed << " shed, " << totals.errors
              << " errors, " << totals.transportFailures
              << " transport failures\n";
    return 0;
}
