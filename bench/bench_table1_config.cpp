/**
 * @file
 * Table I — configuration of the simulated system.  Prints the defaults
 * actually used by the simulator so drift between documentation and code
 * is impossible.
 */

#include "bench_common.hpp"
#include "gpu/gpu_system.hpp"

int
main(int argc, char **argv)
{
    using namespace hpe;
    const auto opt = bench::parseOptions(argc, argv);
    bench::banner("Table I: configuration of the simulated system", opt);

    const GpuConfig g{};
    TextTable t({"component", "configuration"});
    t.addRow({"GPU arch", "NVIDIA GTX-480 Fermi-like"});
    t.addRow({"GPU cores", std::to_string(g.numSms) + " SMs, "
                               + TextTable::num(kCoreClockGHz, 1) + " GHz, "
                               + std::to_string(g.warpsPerSm)
                               + " memory-active warps/SM"});
    t.addRow({"Private L1 cache", std::to_string(g.l1d.sizeBytes / 1024)
                                      + " KB, " + std::to_string(g.l1d.ways)
                                      + "-way, LRU"});
    t.addRow({"Private L1 TLB", std::to_string(g.l1Tlb.entries)
                                    + "-entry per SM, "
                                    + std::to_string(g.l1Tlb.latency)
                                    + "-cycle, LRU, hit under miss"});
    t.addRow({"Shared L2 cache", std::to_string(g.l2d.sizeBytes / 1024)
                                     + " KB total, "
                                     + std::to_string(g.l2d.ways)
                                     + "-way, LRU"});
    t.addRow({"Shared L2 TLB", std::to_string(g.l2Tlb.entries) + "-entry, "
                                   + std::to_string(g.l2Tlb.ways)
                                   + "-associative, LRU, "
                                   + std::to_string(g.l2Tlb.latency)
                                   + "-cycle, "
                                   + std::to_string(g.l2Tlb.ports)
                                   + " ports"});
    t.addRow({"Page walk", std::to_string(g.walkLatency)
                               + " cycles, single-level page table"});
    t.addRow({"DRAM", "GDDR5, " + std::to_string(g.dram.channels)
                          + "-channel, FR-FCFS scheduler"});
    t.addRow({"CPU-GPU interconnect",
              TextTable::num(g.pcie.bandwidthGBs, 0) + " GB/s, "
                  + TextTable::num(cyclesToMicros(g.driver.faultServiceCycles), 0)
                  + " us page fault service time"});
    t.addRow({"Page size", std::to_string(kPageBytes / 1024) + " KB"});
    t.print();
    return 0;
}
