/**
 * @file
 * §IV-B sensitivity: HIR geometry.  The paper settles on an 8-way, 1024-
 * entry HIR because it "avoids way conflicts in the simulations for most
 * applications (except MVT)".  Sweeps entries and associativity and
 * reports way-conflict drops plus fault counts for the conflict-prone
 * applications.
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace hpe;
    const auto opt = bench::parseOptions(argc, argv);
    bench::banner("Sensitivity: HIR cache geometry (timing runs)", opt);

    const std::vector<std::string> apps = {"MVT", "GEM", "HSD", "BFS"};

    struct Geometry
    {
        std::uint32_t entries;
        std::uint32_t ways;
    };
    const std::vector<Geometry> geometries = {
        {128, 4}, {256, 8}, {512, 8}, {1024, 8}, {1024, 16}, {2048, 8},
    };

    const auto results =
        bench::forApps(opt, apps, [&](const std::string &app) {
            const Trace trace = buildApp(app, opt.scale, opt.seed);
            std::vector<InspectableRun> runs;
            for (const Geometry &g : geometries) {
                RunConfig cfg;
                cfg.oversub = 0.75;
                cfg.seed = opt.seed;
                cfg.hpe.hirEntries = g.entries;
                cfg.hpe.hirWays = g.ways;
                runs.push_back(runTimingInspect(trace, PolicyKind::Hpe, cfg));
            }
            return runs;
        });

    for (std::size_t i = 0; i < apps.size(); ++i) {
        std::cout << "--- " << apps[i] << " ---\n";
        TextTable t({"entries", "ways", "conflict drops", "hits recorded",
                     "faults", "storage KB"});
        for (std::size_t gi = 0; gi < geometries.size(); ++gi) {
            const Geometry &g = geometries[gi];
            const InspectableRun &run = results[i][gi];
            t.addRow({std::to_string(g.entries), std::to_string(g.ways),
                      std::to_string(
                          run.stats->findCounter("hpe.hir.conflicts").value()),
                      std::to_string(run.stats
                                         ->findCounter("hpe.hir.hitsRecorded")
                                         .value()),
                      std::to_string(run.timing.faults),
                      TextTable::num(g.entries * 10.0 / 1024.0, 1)});
        }
        t.print();
        std::cout << "\n";
    }
    std::cout << "(Paper: 1024 x 8-way = 10 KB eliminates conflicts for "
                 "most applications; MVT's stride-4 access is the outlier.)\n";
    return 0;
}
