/**
 * @file
 * Simulator throughput and sweep-engine scaling.
 *
 * Not a paper figure: this bench measures the harness itself —
 *
 *  1. single-thread simulation speed (thousand trace references per
 *     second) for the functional and timing simulators, per policy,
 *     over a six-app probe set spanning all pattern types;
 *  2. wall-clock of a Fig. 12-style (app x policy) functional sweep run
 *     serially (--jobs 1) and through the parallel SweepRunner, with a
 *     cell-by-cell check that both produce identical results.
 *
 * Results go to stdout and to BENCH_throughput.json in the working
 * directory, so perf regressions are diffable.  The JSON records
 * hardware_threads: on a single-core container the parallel sweep
 * cannot beat serial, and the speedup field says so honestly.
 * Wall-clock numbers are environment-dependent by nature, so this bench
 * intentionally never feeds table-diff tests.
 */

#include <chrono>
#include <cmath>
#include <fstream>

#include "bench_common.hpp"

namespace {

/**
 * Writer-format stamp of BENCH_throughput.json.  tools/bench_gate.py and
 * the regen-check CI step refuse to compare files missing the stamp or
 * carrying a different one — a silent schema drift between the baseline
 * and a fresh run would otherwise gate on incomparable numbers.
 */
constexpr const char *kBenchToolVersion = "hpe-bench-throughput/1";

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hpe;
    const auto opt = bench::parseOptions(argc, argv);
    bench::banner("Throughput: simulator refs/sec and sweep scaling", opt);

    // Probe set spanning all six pattern types, kept small enough that
    // the whole bench stays in the seconds range.
    const std::vector<std::string> probe = {"HSD", "BFS", "KMN",
                                            "B+T", "SPV", "GEM"};
    const std::vector<PolicyKind> kinds = {PolicyKind::Lru, PolicyKind::Rrip,
                                           PolicyKind::ClockPro,
                                           PolicyKind::Lfu, PolicyKind::Hpe};
    const unsigned hw = ThreadPool::hardwareThreads();
    const unsigned par = opt.jobs != 0 ? opt.jobs : 8;

    std::vector<Trace> traces;
    std::uint64_t probe_refs = 0;
    for (const std::string &app : probe) {
        traces.push_back(buildApp(app, opt.scale, opt.seed));
        probe_refs += traces.back().size();
    }
    RunConfig cfg;
    cfg.oversub = 0.75;
    cfg.seed = opt.seed;

    // --- 1. single-thread refs/sec per policy -------------------------
    const int func_reps = 5;
    TextTable t({"policy", "functional krefs/s", "timing krefs/s"});
    std::vector<std::pair<double, double>> krefs; // aligned with kinds
    for (PolicyKind kind : kinds) {
        const auto f0 = Clock::now();
        for (int rep = 0; rep < func_reps; ++rep)
            for (const Trace &trace : traces)
                runFunctional(trace, kind, cfg);
        const double func_s = secondsSince(f0);
        const double func_krefs =
            static_cast<double>(probe_refs) * func_reps / func_s / 1e3;

        const auto t0 = Clock::now();
        for (const Trace &trace : traces)
            runTiming(trace, kind, cfg);
        const double timing_s = secondsSince(t0);
        const double timing_krefs =
            static_cast<double>(probe_refs) / timing_s / 1e3;

        krefs.emplace_back(func_krefs, timing_krefs);
        t.addRow({policyKindName(kind), TextTable::num(func_krefs, 0),
                  TextTable::num(timing_krefs, 0)});
    }
    t.print();

    // Cross-policy geomeans: the values the bench-gate compares, so they
    // are first-class in the report and the JSON.
    double func_gm = 0.0;
    double timing_gm = 0.0;
    for (const auto &[f, tm] : krefs) {
        func_gm += std::log(f);
        timing_gm += std::log(tm);
    }
    func_gm = std::exp(func_gm / static_cast<double>(krefs.size()));
    timing_gm = std::exp(timing_gm / static_cast<double>(krefs.size()));
    std::cout << "geomean: functional " << TextTable::num(func_gm, 0)
              << " krefs/s, timing " << TextTable::num(timing_gm, 0)
              << " krefs/s\n";

    // --- 2. sweep wall-clock, serial vs parallel ----------------------
    const auto apps = bench::allApps();
    std::vector<Trace> sweep_traces;
    for (const std::string &app : apps)
        sweep_traces.push_back(buildApp(app, opt.scale, opt.seed));
    std::vector<SweepJob> jobs;
    for (const Trace &trace : sweep_traces)
        for (PolicyKind kind : kinds)
            jobs.push_back(SweepJob{&trace, kind, cfg, /*functional=*/true});

    SweepRunner serial(1);
    const auto s0 = Clock::now();
    const auto serial_out = serial.run(jobs);
    const double serial_s = secondsSince(s0);

    SweepRunner parallel(par);
    const auto p0 = Clock::now();
    const auto parallel_out = parallel.run(jobs);
    const double parallel_s = secondsSince(p0);

    bool identical = serial_out.size() == parallel_out.size();
    for (std::size_t i = 0; identical && i < serial_out.size(); ++i)
        identical = serial_out[i].paging.faults == parallel_out[i].paging.faults
            && serial_out[i].paging.evictions
                == parallel_out[i].paging.evictions;
    const double speedup = parallel_s > 0 ? serial_s / parallel_s : 0.0;

    std::cout << "\nsweep: " << jobs.size() << " (app x policy) jobs\n"
              << "  serial (--jobs 1):   " << TextTable::num(serial_s, 2)
              << " s\n"
              << "  parallel (--jobs " << par << "): "
              << TextTable::num(parallel_s, 2) << " s  (speedup "
              << TextTable::num(speedup, 2) << "x on " << hw
              << " hardware thread" << (hw == 1 ? "" : "s") << ")\n"
              << "  results identical:   " << (identical ? "yes" : "NO")
              << "\n";
    if (hw == 1)
        std::cout << "  (single hardware thread: parallel speedup cannot "
                     "exceed ~1x here)\n";

    // --- JSON for regression diffing ----------------------------------
    std::ofstream json("BENCH_throughput.json");
    json << "{\n"
         << "  \"tool_version\": \"" << kBenchToolVersion << "\",\n"
         << "  \"scale\": " << opt.scale << ",\n"
         << "  \"seed\": " << opt.seed << ",\n"
         << "  \"hardware_threads\": " << hw << ",\n"
         << "  \"probe_apps\": " << probe.size() << ",\n"
         << "  \"probe_refs\": " << probe_refs << ",\n"
         << "  \"policies\": {\n";
    for (std::size_t i = 0; i < kinds.size(); ++i) {
        json << "    \"" << policyKindName(kinds[i]) << "\": "
             << "{\"functional_krefs_per_s\": "
             << TextTable::num(krefs[i].first, 0)
             << ", \"timing_krefs_per_s\": "
             << TextTable::num(krefs[i].second, 0) << "}"
             << (i + 1 < kinds.size() ? "," : "") << "\n";
    }
    json << "  },\n"
         << "  \"geomean\": {\"functional_krefs_per_s\": "
         << TextTable::num(func_gm, 0) << ", \"timing_krefs_per_s\": "
         << TextTable::num(timing_gm, 0) << "},\n"
         << "  \"sweep\": {\n"
         << "    \"jobs\": " << jobs.size() << ",\n"
         << "    \"serial_seconds\": " << TextTable::num(serial_s, 3) << ",\n"
         << "    \"parallel_jobs\": " << par << ",\n"
         << "    \"parallel_seconds\": " << TextTable::num(parallel_s, 3)
         << ",\n"
         << "    \"speedup\": " << TextTable::num(speedup, 2) << ",\n"
         << "    \"identical\": " << (identical ? "true" : "false") << "\n"
         << "  }\n"
         << "}\n";
    std::cout << "\nwrote BENCH_throughput.json\n";
    return identical ? 0 : 1;
}
