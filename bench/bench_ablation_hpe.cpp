/**
 * @file
 * Ablation study of HPE's design choices (not a paper figure; DESIGN.md
 * calls these out).  Each variant disables one mechanism and reports the
 * mean fault count across all 23 applications relative to full HPE:
 *
 *  - no-adjustment: dynamic adjustment off (classification only);
 *  - direct-hits:   idealized hit channel (no HIR batching/loss);
 *  - no-division:   page-set division disabled;
 *  - always-LRU:    strategy forced to LRU (no MRU-C);
 *  - always-MRU-C:  strategy forced to MRU-C (no classification value).
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace hpe;
    const auto opt = bench::parseOptions(argc, argv);
    bench::banner("Ablation: HPE variants (functional faults vs full HPE)",
                  opt);

    struct Variant
    {
        const char *name;
        void (*apply)(HpeConfig &);
    };
    const std::vector<Variant> variants = {
        {"full HPE", [](HpeConfig &) {}},
        {"no-adjustment", [](HpeConfig &c) { c.dynamicAdjustment = false; }},
        {"direct-hits", [](HpeConfig &c) { c.hitChannel = HitChannel::Direct; }},
        {"no-division", [](HpeConfig &c) { c.enableDivision = false; }},
        {"always-LRU", [](HpeConfig &c) {
             c.forcedStrategy = ForcedStrategy::Lru;
             c.dynamicAdjustment = false;
         }},
        {"always-MRU-C", [](HpeConfig &c) {
             c.forcedStrategy = ForcedStrategy::MruC;
             c.dynamicAdjustment = false;
         }},
    };

    const auto per_app =
        bench::forAllApps(opt, [&](const std::string &app) {
            const Trace trace = buildApp(app, opt.scale, opt.seed);
            std::vector<double> per_variant;
            for (const Variant &v : variants) {
                RunConfig cfg;
                cfg.oversub = 0.75;
                cfg.seed = opt.seed;
                v.apply(cfg.hpe);
                per_variant.push_back(static_cast<double>(
                    runFunctional(trace, PolicyKind::Hpe, cfg).faults));
            }
            return per_variant;
        });

    // per variant: per app faults
    std::map<std::string, std::map<std::string, double>> faults;
    const auto apps = bench::allApps();
    for (std::size_t i = 0; i < apps.size(); ++i)
        for (std::size_t v = 0; v < variants.size(); ++v)
            faults[variants[v].name][apps[i]] = per_app[i][v];

    TextTable t({"variant", "mean faults vs full", "worst app", "worst ratio"});
    for (const Variant &v : variants) {
        std::vector<double> ratios;
        std::string worst_app;
        double worst = 0;
        for (const std::string &app : bench::allApps()) {
            const double r = faults[v.name][app] / faults["full HPE"][app];
            ratios.push_back(r);
            if (r > worst) {
                worst = r;
                worst_app = app;
            }
        }
        t.addRow({v.name, TextTable::num(bench::mean(ratios), 3), worst_app,
                  TextTable::num(worst, 2)});
    }
    t.print();
    std::cout << "\n(> 1.0 means the ablated variant faults more: the "
                 "mechanism earns its keep.)\n";
    return 0;
}
