/**
 * @file
 * Ablation: the paper's fixed-8-cycle single-level walk versus the
 * realistic four-level radix walk with a shared page walk cache (§II's
 * first design variant).  Confirms the paper's simplification is sound:
 * walk latency is far off the critical path of fault-dominated execution.
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace hpe;
    const auto opt = bench::parseOptions(argc, argv);
    bench::banner("Ablation: fixed-latency walk vs 4-level radix walk + PWC",
                  opt);

    struct AppResult
    {
        TimingResult fixed;
        InspectableRun multi;
    };
    const auto results =
        bench::forAllApps(opt, [&](const std::string &app) {
            const Trace trace = buildApp(app, opt.scale, opt.seed);
            RunConfig fixed, multi;
            fixed.oversub = multi.oversub = 0.75;
            fixed.seed = multi.seed = opt.seed;
            multi.gpu.walkerMode = WalkerMode::MultiLevel;
            AppResult r;
            r.fixed = runTiming(trace, PolicyKind::Hpe, fixed);
            r.multi = runTimingInspect(trace, PolicyKind::Hpe, multi);
            return r;
        });

    TextTable t({"app", "IPC fixed", "IPC multi-level", "delta %",
                 "PWC hit rate", "mean walk latency"});
    std::vector<double> deltas;
    const auto apps = bench::allApps();
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const std::string &app = apps[i];
        const auto &a = results[i].fixed;
        const InspectableRun &run = results[i].multi;
        const double delta = 100.0 * (run.timing.ipc - a.ipc) / a.ipc;
        deltas.push_back(delta);
        const auto &hits = run.stats->findCounter("gpu.walker.pwcHits");
        const auto &misses = run.stats->findCounter("gpu.walker.pwcMisses");
        const double rate = hits.value() + misses.value() > 0
            ? static_cast<double>(hits.value())
                / static_cast<double>(hits.value() + misses.value())
            : 0.0;
        t.addRow({app, TextTable::num(a.ipc, 4),
                  TextTable::num(run.timing.ipc, 4), TextTable::num(delta, 2),
                  TextTable::num(rate, 3),
                  TextTable::num(
                      run.stats->findDistribution("gpu.walker.walkLatency")
                          .mean(),
                      1)});
    }
    t.print();
    std::cout << "\nmean IPC delta " << TextTable::num(bench::mean(deltas), 2)
              << "% — the paper's fixed-latency simplification does not "
                 "distort the eviction study.\n";
    return 0;
}
