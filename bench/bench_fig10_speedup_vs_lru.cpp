/**
 * @file
 * Fig. 10 — HPE's timing IPC compared to LRU at 75% and 50%
 * oversubscription, per application plus the average speedup.
 *
 * Paper shape targets: ~1.0x for types I and VI, largest wins on type II
 * (up to 2.81x for HSD in the paper), averages 1.34x (75%) and 1.16x
 * (50%).
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace hpe;
    const auto opt = bench::parseOptions(argc, argv);
    bench::banner("Fig. 10: HPE speedup over LRU (timing IPC)", opt);

    TextTable t({"type", "app", "LRU IPC 75%", "HPE IPC 75%", "speedup 75%",
                 "LRU IPC 50%", "HPE IPC 50%", "speedup 50%"});
    std::vector<double> sp75, sp50;
    for (const std::string &app : bench::allApps()) {
        const Trace trace = buildApp(app, opt.scale, opt.seed);
        std::vector<std::string> row{bench::typeOf(app), app};
        for (double rate : {0.75, 0.50}) {
            RunConfig cfg;
            cfg.oversub = rate;
            cfg.seed = opt.seed;
            const auto lru = runTiming(trace, PolicyKind::Lru, cfg);
            const auto hpe = runTiming(trace, PolicyKind::Hpe, cfg);
            const double speedup = hpe.ipc / lru.ipc;
            (rate == 0.75 ? sp75 : sp50).push_back(speedup);
            row.push_back(TextTable::num(lru.ipc, 4));
            row.push_back(TextTable::num(hpe.ipc, 4));
            row.push_back(TextTable::num(speedup, 2));
        }
        t.addRow(row);
    }
    t.addRow({"", "mean", "", "", TextTable::num(bench::mean(sp75), 2), "",
              "", TextTable::num(bench::mean(sp50), 2)});
    t.print();
    std::cout << "\n(Paper: average 1.34x at 75% and 1.16x at 50%, max 2.81x "
                 "for HSD.)\n";
    return 0;
}
