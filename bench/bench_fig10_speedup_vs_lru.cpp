/**
 * @file
 * Fig. 10 — HPE's timing IPC compared to LRU at 75% and 50%
 * oversubscription, per application plus the average speedup.
 *
 * Paper shape targets: ~1.0x for types I and VI, largest wins on type II
 * (up to 2.81x for HSD in the paper), averages 1.34x (75%) and 1.16x
 * (50%).
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace hpe;
    const auto opt = bench::parseOptions(argc, argv);
    bench::banner("Fig. 10: HPE speedup over LRU (timing IPC)", opt);

    struct AppResult
    {
        double lru75, hpe75, lru50, hpe50;
    };
    const auto results =
        bench::forAllApps(opt, [&](const std::string &app) {
            const Trace trace = buildApp(app, opt.scale, opt.seed);
            RunConfig cfg;
            cfg.seed = opt.seed;
            cfg.oversub = 0.75;
            const double lru75 = runTiming(trace, PolicyKind::Lru, cfg).ipc;
            const double hpe75 = runTiming(trace, PolicyKind::Hpe, cfg).ipc;
            cfg.oversub = 0.50;
            const double lru50 = runTiming(trace, PolicyKind::Lru, cfg).ipc;
            const double hpe50 = runTiming(trace, PolicyKind::Hpe, cfg).ipc;
            return AppResult{lru75, hpe75, lru50, hpe50};
        });

    TextTable t({"type", "app", "LRU IPC 75%", "HPE IPC 75%", "speedup 75%",
                 "LRU IPC 50%", "HPE IPC 50%", "speedup 50%"});
    std::vector<double> sp75, sp50;
    const auto apps = bench::allApps();
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const AppResult &r = results[i];
        std::vector<std::string> row{bench::typeOf(apps[i]), apps[i]};
        for (double rate : {0.75, 0.50}) {
            const double lru = rate == 0.75 ? r.lru75 : r.lru50;
            const double hpe = rate == 0.75 ? r.hpe75 : r.hpe50;
            const double speedup = hpe / lru;
            (rate == 0.75 ? sp75 : sp50).push_back(speedup);
            row.push_back(TextTable::num(lru, 4));
            row.push_back(TextTable::num(hpe, 4));
            row.push_back(TextTable::num(speedup, 2));
        }
        t.addRow(row);
    }
    t.addRow({"", "mean", "", "", TextTable::num(bench::mean(sp75), 2), "",
              "", TextTable::num(bench::mean(sp50), 2)});
    t.print();
    std::cout << "\n(Paper: average 1.34x at 75% and 1.16x at 50%, max 2.81x "
                 "for HSD.)\n";
    return 0;
}
