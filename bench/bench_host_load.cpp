/**
 * @file
 * §V-C — host-CPU core load per policy.  The paper estimates load as
 * (fault handling + HPE chain updates) / total execution time and reports
 * LRU 29.9%/39.3%, RRIP 30.3%/39.5%, CLOCK-Pro 29.5%/39.2% and HPE
 * 34.0%/47.2% at 75%/50%.
 *
 * Two estimates are printed:
 *  - the simulator's measured load (driver initiation slices / makespan);
 *  - the paper's formula (faults x 20us + HPE flushes x 16.1us worst-case
 *    update) / makespan, which can exceed 100% under a pipelined driver.
 *
 * Our scaled traces are far more fault-dense per unit of compute than the
 * originals, so the absolute loads sit near saturation; the *relative*
 * ordering (HPE slightly above the baselines due to chain updates) is the
 * reproduction target.
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace hpe;
    const auto opt = bench::parseOptions(argc, argv);
    bench::banner("Host-CPU core load per policy (§V-C)", opt);

    const std::vector<PolicyKind> kinds = {PolicyKind::Lru, PolicyKind::Rrip,
                                           PolicyKind::ClockPro,
                                           PolicyKind::Hpe};
    const double update_us = 16.1; // paper's worst-case chain update

    for (double rate : {0.75, 0.50}) {
        struct Load
        {
            double measured, formula;
        };
        // One job per app; each runs every policy on its trace.
        const auto per_app =
            bench::forAllApps(opt, [&](const std::string &app) {
                const Trace trace = buildApp(app, opt.scale, opt.seed);
                std::vector<Load> loads;
                for (PolicyKind kind : kinds) {
                    RunConfig cfg;
                    cfg.oversub = rate;
                    cfg.seed = opt.seed;
                    const auto run = runTimingInspect(trace, kind, cfg);
                    double busy_us =
                        static_cast<double>(run.timing.faults)
                        * cyclesToMicros(cfg.gpu.driver.faultServiceCycles);
                    if (kind == PolicyKind::Hpe)
                        busy_us += static_cast<double>(
                                       run.stats->findCounter("hpe.hirFlushes")
                                           .value())
                            * update_us;
                    loads.push_back(
                        Load{run.timing.hostLoad * 100.0,
                             100.0 * busy_us
                                 / cyclesToMicros(run.timing.cycles)});
                }
                return loads;
            });

        TextTable t({"policy", "measured load %", "paper-formula load %"});
        for (std::size_t k = 0; k < kinds.size(); ++k) {
            std::vector<double> measured, formula;
            for (const auto &loads : per_app) {
                measured.push_back(loads[k].measured);
                formula.push_back(loads[k].formula);
            }
            t.addRow({policyKindName(kinds[k]),
                      TextTable::num(bench::mean(measured), 1),
                      TextTable::num(bench::mean(formula), 1)});
        }
        std::cout << "--- oversubscription " << rate * 100 << "% ---\n";
        t.print();
        std::cout << "\n";
    }
    std::cout << "(Paper: LRU 29.9/39.3, RRIP 30.3/39.5, CLOCK-Pro 29.5/39.2, "
                 "HPE 34.0/47.2 — HPE slightly higher due to chain updates.)\n";
    return 0;
}
