/**
 * @file
 * Table II — workload characteristics: the 23 selected applications with
 * their suite, access-pattern type, and (scaled) footprint.
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace hpe;
    const auto opt = bench::parseOptions(argc, argv);
    bench::banner("Table II: workload characteristics", opt);

    TextTable t({"type", "suite", "app", "abbr", "footprint (pages)",
                 "footprint (MB)", "visits", "kernels"});
    for (const AppSpec &spec : appSpecs()) {
        const Trace trace = buildApp(spec.abbr, opt.scale, opt.seed);
        const double mb = static_cast<double>(trace.footprintPages())
            * static_cast<double>(kPageBytes) / (1024.0 * 1024.0);
        t.addRow({patternName(spec.type), spec.suite, spec.name, spec.abbr,
                  std::to_string(trace.footprintPages()),
                  TextTable::num(mb, 1), std::to_string(trace.size()),
                  std::to_string(trace.kernelCount())});
    }
    t.print();
    return 0;
}
