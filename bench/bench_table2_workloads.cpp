/**
 * @file
 * Table II — workload characteristics: the 23 selected applications with
 * their suite, access-pattern type, and (scaled) footprint.
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace hpe;
    const auto opt = bench::parseOptions(argc, argv);
    bench::banner("Table II: workload characteristics", opt);

    struct AppResult
    {
        std::size_t footprint, visits, kernels;
    };
    const auto results =
        bench::forAllApps(opt, [&](const std::string &app) {
            const Trace trace = buildApp(app, opt.scale, opt.seed);
            return AppResult{trace.footprintPages(), trace.size(),
                             trace.kernelCount()};
        });

    TextTable t({"type", "suite", "app", "abbr", "footprint (pages)",
                 "footprint (MB)", "visits", "kernels"});
    std::size_t i = 0;
    for (const AppSpec &spec : appSpecs()) {
        const AppResult &r = results[i++];
        const double mb = static_cast<double>(r.footprint)
            * static_cast<double>(kPageBytes) / (1024.0 * 1024.0);
        t.addRow({patternName(spec.type), spec.suite, spec.name, spec.abbr,
                  std::to_string(r.footprint), TextTable::num(mb, 1),
                  std::to_string(r.visits), std::to_string(r.kernels)});
    }
    t.print();
    return 0;
}
