/**
 * @file
 * Driver realism features (beyond the paper's fixed-cost model):
 * sequential block prefetch, fault batching, and dirty-page writeback.
 * Reports their effect on faults, IPC and PCIe traffic for representative
 * applications under HPE.
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace hpe;
    const auto opt = bench::parseOptions(argc, argv);
    bench::banner("Driver features: prefetch, batching, writeback", opt);

    struct Variant
    {
        const char *name;
        void (*apply)(DriverConfig &);
    };
    const std::vector<Variant> variants = {
        {"paper default", [](DriverConfig &) {}},
        {"prefetch 15", [](DriverConfig &d) { d.prefetchDegree = 15; }},
        {"batch 8", [](DriverConfig &d) { d.batchSize = 8; }},
        {"prefetch+batch", [](DriverConfig &d) {
             d.prefetchDegree = 15;
             d.batchSize = 8;
         }},
    };

    const std::vector<std::string> apps = {"LEU", "HSD", "BFS", "HIS"};
    struct AppResult
    {
        double writeFraction;
        std::vector<InspectableRun> runs; // aligned with variants
    };
    const auto results =
        bench::forApps(opt, apps, [&](const std::string &app) {
            const Trace trace = buildApp(app, opt.scale, opt.seed);
            AppResult r;
            r.writeFraction = trace.writeFraction();
            for (const Variant &v : variants) {
                RunConfig cfg;
                cfg.oversub = 0.75;
                cfg.seed = opt.seed;
                v.apply(cfg.gpu.driver);
                r.runs.push_back(runTimingInspect(trace, PolicyKind::Hpe, cfg));
            }
            return r;
        });

    for (std::size_t i = 0; i < apps.size(); ++i) {
        std::cout << "--- " << apps[i] << " (write fraction "
                  << TextTable::num(results[i].writeFraction, 2) << ") ---\n";
        TextTable t({"variant", "faults", "prefetched", "dirty evictions",
                     "PCIe KB", "IPC"});
        for (std::size_t v_idx = 0; v_idx < variants.size(); ++v_idx) {
            const Variant &v = variants[v_idx];
            const InspectableRun &run = results[i].runs[v_idx];
            t.addRow({v.name, std::to_string(run.timing.faults),
                      std::to_string(run.stats
                                         ->findCounter("driver.uvm.prefetches")
                                         .value()),
                      std::to_string(
                          run.stats->findCounter("driver.uvm.dirtyEvictions")
                              .value()),
                      TextTable::num(
                          static_cast<double>(
                              run.stats->findCounter("pcie.bytes").value())
                              / 1024.0,
                          1),
                      TextTable::num(run.timing.ipc, 4)});
        }
        t.print();
        std::cout << "\n";
    }
    std::cout << "(Prefetch only fills free frames, so oversubscribed runs "
                 "see little of it — the fault storm outruns sequential "
                 "prefetch; see tests for the low-concurrency case.)\n";
    return 0;
}
