/**
 * @file
 * Multi-application sharing (the MASK-adjacent study from the paper's
 * related work): two workloads co-run against one shared GPU memory and
 * one eviction policy.  Reports total faults, per-app fault inflation
 * versus running alone in the same memory, and fairness (min/max
 * slowdown), per policy.
 *
 * Shared memory = 60% of the combined footprint, so the mixes run under
 * genuine pressure.
 */

#include "bench_common.hpp"
#include "sim/multi_app.hpp"

int
main(int argc, char **argv)
{
    using namespace hpe;
    const auto opt = bench::parseOptions(argc, argv);
    bench::banner("Multi-application sharing: two apps, one memory", opt);

    const std::vector<std::pair<const char *, const char *>> mixes = {
        {"HSD", "B+T"}, // thrashing + LRU-friendly
        {"HSD", "SRD"}, // thrashing + thrashing
        {"HOT", "B+T"}, // streaming + LRU-friendly
        {"BFS", "HIS"}, // two irregular switchers
    };
    const std::vector<PolicyKind> kinds = {PolicyKind::Lru, PolicyKind::Rrip,
                                           PolicyKind::ClockPro,
                                           PolicyKind::Hpe, PolicyKind::Ideal};

    struct MixResult
    {
        std::size_t frames;
        std::vector<MultiAppResult> byKind; // aligned with kinds
    };
    SweepRunner runner(opt.jobs);
    const auto results = runner.map(mixes.size(), [&](std::size_t m) {
        const Trace a = buildApp(mixes[m].first, opt.scale, opt.seed);
        const Trace b = buildApp(mixes[m].second, opt.scale, opt.seed);
        MixResult r;
        r.frames = static_cast<std::size_t>(
            0.6 * static_cast<double>(a.footprintPages()
                                      + b.footprintPages()));
        for (PolicyKind kind : kinds)
            r.byKind.push_back(runShared({a, b}, kind, r.frames));
        return r;
    });

    for (std::size_t m = 0; m < mixes.size(); ++m) {
        const auto &[a_name, b_name] = mixes[m];
        std::cout << "--- " << a_name << " + " << b_name << " (memory "
                  << results[m].frames << " frames) ---\n";
        TextTable t({"policy", "total faults",
                     std::string(a_name) + " slowdown",
                     std::string(b_name) + " slowdown", "fairness"});
        for (std::size_t k = 0; k < kinds.size(); ++k) {
            const auto &r = results[m].byKind[k];
            t.addRow({policyKindName(kinds[k]), std::to_string(r.totalFaults),
                      TextTable::num(r.apps[0].slowdown(), 2),
                      TextTable::num(r.apps[1].slowdown(), 2),
                      TextTable::num(r.fairness(), 2)});
        }
        t.print();
        std::cout << "\n";
    }
    std::cout << "(Slowdown = shared faults / solo faults in the same "
                 "memory; fairness = min slowdown / max slowdown.)\n";
    return 0;
}
