/**
 * @file
 * Fig. 3 — evictions of LRU and RRIP normalized to the Ideal (Belady MIN)
 * policy at 75% oversubscription, per application (functional simulator,
 * exact counts).
 *
 * Paper shape targets: RRIP thrashes with LRU on SRD and HSD; LRU is near
 * Ideal for type I (except GEM) and type VI; both policies struggle on
 * parts of types IV-V (BFS, HIS, SPV).
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace hpe;
    const auto opt = bench::parseOptions(argc, argv);
    bench::banner("Fig. 3: LRU and RRIP evictions normalized to Ideal (75%)",
                  opt);

    RunConfig cfg;
    cfg.oversub = 0.75;
    cfg.seed = opt.seed;

    TextTable t({"type", "app", "Ideal evictions", "LRU/Ideal", "RRIP/Ideal"});
    std::vector<double> lru_ratios, rrip_ratios;
    for (const std::string &app : bench::allApps()) {
        const Trace trace = buildApp(app, opt.scale, opt.seed);
        const auto ideal = runFunctional(trace, PolicyKind::Ideal, cfg);
        const auto lru = runFunctional(trace, PolicyKind::Lru, cfg);
        const auto rrip = runFunctional(trace, PolicyKind::Rrip, cfg);
        const double base =
            ideal.evictions > 0 ? static_cast<double>(ideal.evictions) : 1.0;
        const double lr = static_cast<double>(lru.evictions) / base;
        const double rr = static_cast<double>(rrip.evictions) / base;
        lru_ratios.push_back(lr);
        rrip_ratios.push_back(rr);
        t.addRow({bench::typeOf(app), app, std::to_string(ideal.evictions),
                  TextTable::num(lr, 2), TextTable::num(rr, 2)});
    }
    t.addRow({"", "mean", "", TextTable::num(bench::mean(lru_ratios), 2),
              TextTable::num(bench::mean(rrip_ratios), 2)});
    t.print();
    return 0;
}
