/**
 * @file
 * Fig. 3 — evictions of LRU and RRIP normalized to the Ideal (Belady MIN)
 * policy at 75% oversubscription, per application (functional simulator,
 * exact counts).
 *
 * Paper shape targets: RRIP thrashes with LRU on SRD and HSD; LRU is near
 * Ideal for type I (except GEM) and type VI; both policies struggle on
 * parts of types IV-V (BFS, HIS, SPV).
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace hpe;
    const auto opt = bench::parseOptions(argc, argv);
    bench::banner("Fig. 3: LRU and RRIP evictions normalized to Ideal (75%)",
                  opt);

    RunConfig cfg;
    cfg.oversub = 0.75;
    cfg.seed = opt.seed;

    struct AppResult
    {
        std::uint64_t ideal, lru, rrip;
    };
    const auto results =
        bench::forAllApps(opt, [&](const std::string &app) {
            const Trace trace = buildApp(app, opt.scale, opt.seed);
            return AppResult{
                runFunctional(trace, PolicyKind::Ideal, cfg).evictions,
                runFunctional(trace, PolicyKind::Lru, cfg).evictions,
                runFunctional(trace, PolicyKind::Rrip, cfg).evictions};
        });

    TextTable t({"type", "app", "Ideal evictions", "LRU/Ideal", "RRIP/Ideal"});
    std::vector<double> lru_ratios, rrip_ratios;
    const auto apps = bench::allApps();
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const AppResult &r = results[i];
        const double base =
            r.ideal > 0 ? static_cast<double>(r.ideal) : 1.0;
        const double lr = static_cast<double>(r.lru) / base;
        const double rr = static_cast<double>(r.rrip) / base;
        lru_ratios.push_back(lr);
        rrip_ratios.push_back(rr);
        t.addRow({bench::typeOf(apps[i]), apps[i], std::to_string(r.ideal),
                  TextTable::num(lr, 2), TextTable::num(rr, 2)});
    }
    t.addRow({"", "mean", "", TextTable::num(bench::mean(lru_ratios), 2),
              TextTable::num(bench::mean(rrip_ratios), 2)});
    t.print();
    return 0;
}
