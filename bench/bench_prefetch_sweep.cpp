/**
 * @file
 * Prefetch sweep: far-fault count versus memory provisioning for the
 * streaming (Type I) and thrashing (Type II) applications, under each
 * prefetcher.  Reproduces the fault-count-vs-oversubscription shape the
 * UVM prefetching literature reports: on streaming access the sequential
 * and density prefetchers convert most compulsory far-faults into
 * speculative migrations, and the win survives memory pressure because
 * speculative pages sit in the policy's cold tier and are evicted first.
 *
 * The "memory" column is GPU capacity as a fraction of the application
 * footprint; 1.10 provisions slack beyond the footprint, so any faults
 * left there are pure demand misses the prefetcher failed to hide.
 */

#include <algorithm>

#include "bench_common.hpp"
#include "sim/paging_simulator.hpp"

namespace {

using namespace hpe;
using prefetch::PrefetchKind;

struct Cell
{
    std::uint64_t faults = 0;
    std::uint64_t prefetches = 0;
    double accuracy = 0.0;
};

struct AppRows
{
    std::string app;
    std::string type;
    // rows[ratio][kind]
    std::vector<std::vector<Cell>> rows;
};

constexpr double kRatios[] = {0.75, 0.90, 1.00, 1.10};
constexpr PrefetchKind kKinds[] = {PrefetchKind::None, PrefetchKind::Sequential,
                                   PrefetchKind::Stride, PrefetchKind::Density};

std::size_t
framesAtRatio(const Trace &t, double ratio)
{
    const auto fp = static_cast<double>(t.footprintPages());
    return std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(fp * ratio)));
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hpe;
    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::banner("prefetch sweep: far-faults vs memory provisioning (HPE)",
                  opt);

    const std::vector<std::string> apps = {"HOT", "GEM", "HSD", "STN"};
    const auto results = bench::forApps(opt, apps, [&](const std::string &app) {
        AppRows out;
        out.app = app;
        out.type = bench::typeOf(app);
        const Trace t = buildApp(app, opt.scale);
        for (const double ratio : kRatios) {
            std::vector<Cell> row;
            for (const PrefetchKind kind : kKinds) {
                StatRegistry stats;
                auto policy = makePolicy(PolicyKind::Hpe, t, stats, {}, opt.seed);
                PagingOptions popts;
                popts.faultBatch = prefetch::FaultBatcher::kDefaultWindow;
                popts.prefetch.kind = kind;
                const auto r = runPaging(t, *policy, framesAtRatio(t, ratio),
                                         stats, popts);
                row.push_back({r.faults, r.prefetches, r.prefetchAccuracy()});
            }
            out.rows.push_back(std::move(row));
        }
        return out;
    });

    TextTable table({"app", "type", "memory", "none", "sequential", "stride",
                     "density", "best reduction", "best accuracy"});
    for (const AppRows &res : results) {
        for (std::size_t ri = 0; ri < res.rows.size(); ++ri) {
            const auto &row = res.rows[ri];
            const double none = static_cast<double>(row[0].faults);
            std::size_t best = 0;
            for (std::size_t k = 1; k < row.size(); ++k)
                if (row[k].faults < row[best].faults)
                    best = k;
            const double reduction =
                none > 0 ? 1.0 - static_cast<double>(row[best].faults) / none
                         : 0.0;
            table.addRow({res.app, res.type, TextTable::num(kRatios[ri], 2),
                          std::to_string(row[0].faults),
                          std::to_string(row[1].faults),
                          std::to_string(row[2].faults),
                          std::to_string(row[3].faults),
                          TextTable::num(100.0 * reduction, 1) + "%",
                          TextTable::num(100.0 * row[best].accuracy, 1) + "%"});
        }
    }
    table.print();

    std::cout << "\n(faults = demand far-faults serviced; speculative "
                 "migrations are counted\nseparately and never evict — "
                 "prefetched pages land in HPE's cold/old set.)\n";
    return 0;
}
